"""Unit tests for repro.core.events.EventQueue."""

import pytest

from repro.core.events import EventQueue
from repro.data import RecordCollection
from repro.similarity import Jaccard, Overlap


def collection_of_sizes(*sizes):
    token = 0
    sets = []
    for size in sizes:
        sets.append(list(range(token, token + size)))
        token += size
    return RecordCollection.from_integer_sets(sets)


class TestInitialization:
    def test_uncompressed_one_event_per_record(self):
        coll = collection_of_sizes(2, 3, 3, 4)
        queue = EventQueue(coll, Jaccard(), compressed=False)
        assert len(queue) == 4

    def test_compressed_one_event_per_size_block(self):
        coll = collection_of_sizes(2, 3, 3, 4)
        queue = EventQueue(coll, Jaccard(), compressed=True)
        assert len(queue) == 3  # sizes 2, 3, 4

    def test_initial_bound_is_one_for_jaccard(self):
        coll = collection_of_sizes(2, 5)
        queue = EventQueue(coll, Jaccard(), compressed=False)
        assert queue.peek_bound() == pytest.approx(1.0)

    def test_initial_bound_for_overlap_is_size(self):
        coll = collection_of_sizes(2, 5)
        queue = EventQueue(coll, Overlap(), compressed=False)
        # Largest initial bound comes from the biggest record.
        assert queue.peek_bound() == pytest.approx(5.0)


class TestOrdering:
    def test_pops_in_decreasing_bound_order(self):
        coll = collection_of_sizes(2, 4, 6, 8)
        queue = EventQueue(coll, Jaccard(), compressed=False)
        bounds = []
        while queue:
            bound, prefix, rids = queue.pop()
            bounds.append(bound)
            size = len(coll[rids[0]])
            queue.push_next(size, prefix, rids, cutoff=0.0)
        assert bounds == sorted(bounds, reverse=True)

    def test_batch_records_share_size(self):
        coll = collection_of_sizes(3, 3, 3, 5)
        queue = EventQueue(coll, Jaccard(), compressed=True)
        __, __, rids = queue.pop()
        sizes = {len(coll[rid]) for rid in rids}
        assert len(sizes) == 1

    def test_exhausts_all_prefix_positions(self):
        coll = collection_of_sizes(3)
        queue = EventQueue(coll, Jaccard(), compressed=False)
        prefixes = []
        while queue:
            bound, prefix, rids = queue.pop()
            prefixes.append(prefix)
            queue.push_next(3, prefix, rids, cutoff=0.0)
        assert prefixes == [1, 2, 3]


class TestPushNext:
    def test_stops_at_record_size(self):
        coll = collection_of_sizes(2)
        queue = EventQueue(coll, Jaccard(), compressed=False)
        __, prefix, rids = queue.pop()
        queue.push_next(2, 2, rids, cutoff=0.0)  # prefix 3 > size 2
        assert len(queue) == 0

    def test_cutoff_prunes_hopeless_events(self):
        coll = collection_of_sizes(4)
        queue = EventQueue(coll, Jaccard(), compressed=False)
        __, prefix, rids = queue.pop()
        # Next bound would be 1 - 1/4 = 0.75 <= cutoff: skipped.
        queue.push_next(4, prefix, rids, cutoff=0.75)
        assert len(queue) == 0

    def test_cutoff_zero_keeps_events(self):
        coll = collection_of_sizes(4)
        queue = EventQueue(coll, Jaccard(), compressed=False)
        __, prefix, rids = queue.pop()
        queue.push_next(4, prefix, rids, cutoff=0.0)
        assert len(queue) == 1

    def test_peek_on_empty_is_none(self):
        coll = collection_of_sizes(1)
        queue = EventQueue(coll, Jaccard(), compressed=False)
        queue.pop()
        assert queue.peek_bound() is None
        assert not queue
