"""Tests for the ``repro lint`` CLI: exit codes, selection, JSON mode."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.analysis.engine import checker_ids

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

CLEAN = (
    'GREETING: str = "hi"\n\n\ndef shout(text: str) -> str:\n'
    "    return text.upper()\n"
)
UNTYPED = "def shout(text):\n    return text.upper()\n"
BROKEN = "def shout(text:\n"


@pytest.fixture
def tree(tmp_path):
    def write(name, content):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        return str(path)

    return write


class TestExitCodes:
    def test_zero_on_clean_file(self, tree, capsys):
        path = tree("clean.py", CLEAN)
        assert main(["lint", path]) == 0
        err = capsys.readouterr().err
        assert "0 finding(s) in 1 file(s)" in err

    def test_zero_on_repo_source_tree(self, capsys):
        # The repo holds itself to its own lint: src/repro must be clean.
        assert main(["lint", REPO_SRC]) == 0

    def test_one_when_findings(self, tree, capsys):
        path = tree("repro/bad.py", UNTYPED)
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "[annotations]" in out
        assert "shout" in out

    def test_two_on_unknown_checker(self, tree, capsys):
        path = tree("clean.py", CLEAN)
        assert main(["lint", path, "--select", "no-such-checker"]) == 2
        assert "no-such-checker" in capsys.readouterr().err

    def test_two_on_missing_path(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["lint", missing]) == 2
        assert "nope" in capsys.readouterr().err

    def test_syntax_error_is_a_finding_not_a_crash(self, tree, capsys):
        path = tree("repro/broken.py", BROKEN)
        assert main(["lint", path]) == 1
        assert "[syntax]" in capsys.readouterr().out

    def test_two_on_undecodable_file_not_a_crash(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "latin.py"
        bad.parent.mkdir(parents=True)
        bad.write_bytes(b"# caf\xe9 = tr\xe8s bien\nx = 1\n")  # latin-1
        assert main(["lint", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert "latin.py" in err

    def test_two_on_unreadable_file_not_a_crash(self, tree, capsys):
        import os

        path = tree("repro/secret.py", CLEAN)
        os.chmod(path, 0o000)
        try:
            if os.access(path, os.R_OK):  # running as root: chmod is moot
                pytest.skip("permissions not enforced for this user")
            assert main(["lint", path]) == 2
            assert "cannot read" in capsys.readouterr().err
        finally:
            os.chmod(path, 0o644)


class TestSelection:
    def test_select_restricts_checkers(self, tree, capsys):
        path = tree("repro/bad.py", UNTYPED)
        assert main(["lint", path, "--select", "bound-safety"]) == 0
        err = capsys.readouterr().err
        assert "1 checker(s)" in err

    def test_ignore_drops_checker(self, tree, capsys):
        path = tree("repro/bad.py", UNTYPED)
        assert main(["lint", path, "--ignore", "annotations"]) == 0

    def test_select_and_ignore_compose(self, tree, capsys):
        path = tree("repro/bad.py", UNTYPED)
        code = main(["lint", path, "--select", "annotations,race", "--ignore", "race"])
        assert code == 1

    def test_outside_repro_package_is_skipped(self, tree):
        # Every checker constrains repro/ library code only; a module
        # outside any repro/ directory produces no findings.
        path = tree("scripts.py", UNTYPED)
        assert main(["lint", path]) == 0


class TestJsonMode:
    def test_json_structure(self, tree, capsys):
        path = tree("repro/bad.py", UNTYPED)
        assert main(["lint", path, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["files"] == 1
        assert set(report["checkers"]) == set(checker_ids()) | {
            "syntax",
            "unused-suppression",
        }
        (finding,) = [f for f in report["findings"] if f["checker"] == "annotations"]
        assert finding["path"].endswith("bad.py")
        assert finding["line"] >= 1
        assert "shout" in finding["message"]

    def test_json_clean_run(self, tree, capsys):
        path = tree("clean.py", CLEAN)
        assert main(["lint", path, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["findings"] == []


class TestSarifMode:
    def test_sarif_document_structure(self, tree, tmp_path, capsys):
        path = tree("repro/bad.py", UNTYPED)
        out_path = tmp_path / "out.sarif.json"
        assert main(["lint", path, "--sarif", str(out_path)]) == 1
        document = json.loads(out_path.read_text())
        assert document["version"] == "2.1.0"
        assert document["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert set(checker_ids()) <= rule_ids
        assert {"syntax", "unused-suppression"} <= rule_ids
        (result,) = [
            r for r in run["results"] if r["ruleId"] == "annotations"
        ]
        assert "shout" in result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad.py")
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1

    def test_sarif_clean_run_still_lists_rules(self, tree, tmp_path, capsys):
        path = tree("clean.py", CLEAN)
        out_path = tmp_path / "clean.sarif.json"
        assert main(["lint", path, "--sarif", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        (run,) = document["runs"]
        assert run["results"] == []
        assert run["tool"]["driver"]["rules"]


class TestList:
    def test_list_prints_all_checkers(self, capsys):
        assert main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        for checker_id in checker_ids():
            assert checker_id in out
