"""Unit tests for the metrics registry, absorbers and exporters.

``TestAbsorberCoverage`` is the runtime half of the ``stats-drift``
absorber lint rule: the checker proves ``absorb_topk_stats`` /
``absorb_join_stats`` *read* every field; these tests prove each field
actually *changes* the exported registry, with the field list discovered
through ``dataclasses.fields`` so new counters are covered automatically.
"""

import dataclasses

import pytest

from repro.core.metrics import EmitEvent, JoinStats, TopkStats
from repro.obs import (
    MetricsRegistry,
    Tracer,
    to_prometheus_text,
)
from repro.obs.metrics import Gauge, Histogram


class TestGaugeModes:
    def test_max_mode_keeps_best_value(self):
        gauge = Gauge(name="g", help="", mode="max")
        gauge.set(2.0)
        gauge.set(1.0)
        assert gauge.value == 2.0
        gauge.set(3.0)
        assert gauge.value == 3.0

    def test_sum_mode_merge_adds(self):
        a = Gauge(name="g", help="", mode="sum")
        b = Gauge(name="g", help="", mode="sum")
        a.set(2.0)
        b.set(3.0)
        a.merge_from(b)
        assert a.value == 5.0

    def test_last_mode_merge_replaces(self):
        a = Gauge(name="g", help="", mode="last")
        b = Gauge(name="g", help="", mode="last")
        a.set(2.0)
        b.set(3.0)
        a.merge_from(b)
        assert a.value == 3.0

    def test_merge_from_unset_gauge_is_a_noop(self):
        a = Gauge(name="g", help="", mode="sum")
        a.set(2.0)
        a.merge_from(Gauge(name="g", help="", mode="sum"))
        assert a.value == 2.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Gauge(name="g", help="", mode="median")

    def test_conflicting_modes_refuse_to_merge(self):
        a = Gauge(name="g", help="", mode="sum")
        with pytest.raises(ValueError):
            a.merge_from(Gauge(name="g", help="", mode="max"))


class TestHistogram:
    def test_observe_fills_the_right_buckets(self):
        histogram = Histogram(name="h", help="", edges=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(9.0)  # lands in the implicit +Inf bucket
        assert histogram.bucket_counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.total == 11.0

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram(name="h", help="", edges=(2.0, 1.0))

    def test_merge_requires_identical_edges(self):
        a = Histogram(name="h", help="", edges=(1.0,))
        with pytest.raises(ValueError):
            a.merge_from(Histogram(name="h", help="", edges=(2.0,)))

    def test_merge_adds_buckets_and_totals(self):
        a = Histogram(name="h", help="", edges=(1.0,))
        b = Histogram(name="h", help="", edges=(1.0,))
        a.observe(0.5)
        b.observe(5.0)
        a.merge_from(b)
        assert a.bucket_counts == [1, 1]
        assert a.count == 2 and a.total == 5.5


class TestAbsorberCoverage:
    def test_every_topk_stats_field_influences_the_export(self):
        baseline = MetricsRegistry()
        baseline.absorb_topk_stats(TopkStats())
        for spec in dataclasses.fields(TopkStats):
            if spec.type in ("int", int):
                bumped = TopkStats(**{spec.name: 7})
            elif spec.name == "emits":
                bumped = TopkStats(emits=[EmitEvent(1, 0.5, 0.9, 0.4, 0.002)])
            else:
                pytest.fail(
                    "extend this test for TopkStats.%s (type %r)"
                    % (spec.name, spec.type)
                )
            registry = MetricsRegistry()
            registry.absorb_topk_stats(bumped)
            assert registry.export() != baseline.export(), spec.name

    def test_every_join_stats_field_influences_the_export(self):
        baseline = MetricsRegistry()
        baseline.absorb_join_stats(JoinStats())
        for spec in dataclasses.fields(JoinStats):
            registry = MetricsRegistry()
            registry.absorb_join_stats(JoinStats(**{spec.name: 7}))
            assert registry.export() != baseline.export(), spec.name

    def test_counter_values_match_the_stats(self):
        registry = MetricsRegistry()
        registry.absorb_topk_stats(
            TopkStats(events=5, candidates=9, verifications=4),
            record_count=2,
        )
        counters = {c.name: c.value for c in registry.counters()}
        assert counters["repro_events_total"] == 5
        assert counters["repro_candidates_total"] == 9
        assert counters["repro_verifications_total"] == 4
        gauges = {g.name: g.value for g in registry.gauges()}
        assert gauges["repro_verifications_per_record"] == 2.0

    def test_bitmap_hit_rate_is_rederived_from_merged_counters(self):
        # A ratio of sums is not a sum (or average) of ratios: 5/10 and
        # 10/10 must merge to 15/20 = 0.75, not 0.5, 1.0 or 1.5.
        a = MetricsRegistry()
        a.absorb_topk_stats(TopkStats(bitmap_checked=10, bitmap_pruned=5))
        b = MetricsRegistry()
        b.absorb_topk_stats(TopkStats(bitmap_checked=10, bitmap_pruned=10))
        a.merge_from(b)
        gauges = {g.name: g.value for g in a.gauges()}
        assert gauges["repro_bitmap_hit_rate"] == pytest.approx(0.75)


class TestWireFormat:
    def test_export_absorb_roundtrip_merges_additively(self):
        source = MetricsRegistry()
        source.counter("c", "help").inc(3)
        source.gauge("g", "help", mode="sum").set(2.0)
        source.histogram("h", "help", edges=(1.0,)).observe(0.5)

        target = MetricsRegistry()
        target.counter("c", "help").inc(1)
        target.gauge("g", "help", mode="sum").set(1.0)
        target.histogram("h", "help", edges=(1.0,)).observe(5.0)
        target.absorb_export(source.export())

        assert target.counter("c").value == 4
        assert target.gauge("g").value == 3.0
        histogram = target.histogram("h")
        assert histogram.bucket_counts == [1, 1]
        assert histogram.count == 2

    def test_labeled_families_stay_distinct(self):
        registry = MetricsRegistry()
        registry.counter("c", "help", labels={"side": "r"}).inc(1)
        registry.counter("c", "help", labels={"side": "s"}).inc(2)
        values = sorted(c.value for c in registry.counters())
        assert values == [1, 2]


class TestPrometheusText:
    def test_families_and_histogram_series(self):
        tracer = Tracer()
        with tracer.span("topk_join"):
            pass
        tracer.add_phase_time("kernel_scan", 0.5)
        tracer.metrics.absorb_topk_stats(
            TopkStats(
                events=5,
                bitmap_checked=4,
                bitmap_pruned=3,
                emits=[EmitEvent(1, 0.5, 0.9, 0.4, 0.002)],
            )
        )
        text = to_prometheus_text(tracer)
        assert "# TYPE repro_events_total counter" in text
        assert "repro_events_total 5" in text
        assert "# TYPE repro_emit_latency_seconds histogram" in text
        assert 'repro_emit_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_emit_latency_seconds_count 1" in text
        assert 'repro_span_seconds_total{phase="topk_join"}' in text
        assert 'repro_phase_calls_total{phase="kernel_scan"} 1' in text

    def test_label_values_are_escaped(self):
        tracer = Tracer()
        tracer.metrics.counter("c", "help", labels={"dataset": 'a"b\nc\\d'}).inc(1)
        text = to_prometheus_text(tracer)
        assert 'dataset="a\\"b\\nc\\\\d"' in text
