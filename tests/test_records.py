"""Unit tests for repro.data.records."""

import pytest

from repro.data import RecordCollection
from repro.data.ordering import lexicographic_ordering


class TestCanonicalOrdering:
    def test_tokens_sorted_by_rank(self):
        coll = RecordCollection.from_token_lists([["z", "a", "m"]])
        record = coll[0]
        assert list(record.tokens) == sorted(record.tokens)

    def test_rare_tokens_lead_prefixes(self):
        # "rare" appears once, "common" in every record: idf ordering must
        # put "rare" before "common" inside the record.
        coll = RecordCollection.from_token_lists(
            [["common", "rare"], ["common", "x"], ["common", "y"]]
        )
        for record in coll:
            strings = coll.strings(record).split()
            assert strings[-1] == "common"

    def test_records_sorted_by_size(self):
        coll = RecordCollection.from_token_lists(
            [["a", "b", "c"], ["a"], ["a", "b"]]
        )
        sizes = [len(r) for r in coll]
        assert sizes == sorted(sizes)

    def test_rid_matches_position(self):
        coll = RecordCollection.from_token_lists([["a", "b"], ["c"], ["d", "e", "f"]])
        for position, record in enumerate(coll):
            assert record.rid == position
            assert coll[record.rid] is record

    def test_source_id_preserved(self):
        coll = RecordCollection.from_token_lists([["a", "b", "c"], ["z"]])
        # The singleton record sorts first but came from input position 1.
        assert coll[0].source_id == 1
        assert coll[1].source_id == 0

    def test_custom_ordering_factory(self):
        coll = RecordCollection.from_token_lists(
            [["b", "a"], ["b"]], ordering_factory=lexicographic_ordering
        )
        record = coll[1]
        assert coll.strings(record).split() == ["a", "b"]


class TestDeduplication:
    def test_exact_duplicates_dropped(self):
        coll = RecordCollection.from_token_lists([["a", "b"], ["b", "a"]])
        assert len(coll) == 1

    def test_dedupe_disabled(self):
        coll = RecordCollection.from_token_lists(
            [["a", "b"], ["b", "a"]], dedupe=False
        )
        assert len(coll) == 2

    def test_empty_records_dropped(self):
        coll = RecordCollection.from_token_lists([[], ["a"]])
        assert len(coll) == 1


class TestConstructors:
    def test_from_texts(self):
        coll = RecordCollection.from_texts(["the lord", "the rings"])
        assert len(coll) == 2
        assert coll.universe_size == 3  # the, lord, rings

    def test_from_qgrams(self):
        coll = RecordCollection.from_qgrams(["abcd", "bcde"], q=3)
        assert len(coll) == 2

    def test_from_integer_sets(self):
        coll = RecordCollection.from_integer_sets([[3, 1, 2], [5, 1]])
        assert [tuple(r.tokens) for r in coll] == [(1, 5), (1, 2, 3)]

    def test_from_integer_sets_duplicate_tokens_collapse(self):
        coll = RecordCollection.from_integer_sets([[1, 1, 2]])
        assert tuple(coll[0].tokens) == (1, 2)

    def test_universe_size_from_integer_sets(self):
        coll = RecordCollection.from_integer_sets([[0, 7]])
        assert coll.universe_size == 8


class TestDerivedStatistics:
    def test_average_size(self):
        coll = RecordCollection.from_integer_sets([[1], [1, 2], [1, 2, 3]])
        assert coll.average_size == pytest.approx(2.0)

    def test_average_size_empty(self):
        coll = RecordCollection([], universe_size=0)
        assert coll.average_size == 0.0

    def test_token_frequencies(self):
        coll = RecordCollection.from_integer_sets([[1, 2], [2, 3]])
        freqs = coll.token_frequencies()
        assert freqs[2] == 2
        assert freqs[1] == 1

    def test_size_blocks_cover_collection(self):
        coll = RecordCollection.from_integer_sets(
            [[1], [2], [1, 2], [3, 4], [1, 2, 3]]
        )
        blocks = coll.size_blocks()
        covered = []
        for size, start, stop in blocks:
            for rid in range(start, stop):
                assert len(coll[rid]) == size
                covered.append(rid)
        assert covered == list(range(len(coll)))

    def test_size_blocks_empty(self):
        coll = RecordCollection([], universe_size=0)
        assert coll.size_blocks() == []


class TestRecordProtocol:
    def test_len_iter_getitem(self):
        coll = RecordCollection.from_integer_sets([[5, 3, 9]])
        record = coll[0]
        assert len(record) == 3
        assert list(record) == [3, 5, 9]
        assert record[0] == 3

    def test_size_property(self):
        coll = RecordCollection.from_integer_sets([[5, 3, 9]])
        assert coll[0].size == 3

    def test_repr(self):
        coll = RecordCollection.from_integer_sets([[1, 2]])
        assert "rid=0" in repr(coll[0])

    def test_strings_without_dictionary(self):
        coll = RecordCollection.from_integer_sets([[2, 1]])
        assert coll.strings(coll[0]) == "1 2"
