"""Tests for the accelerated hot path (bitmap prefilter, scan kernels).

Covers the exactness contract of :mod:`repro.accel.kernel` — the bitmap
signature bound must never undercut a true overlap, and every kernel must
be tie-equivalent to the historical loop — plus the flat posting columns
and the benchmark-baseline gate logic.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TopkOptions, TopkStats, naive_topk, topk_join
from repro.accel.kernel import (
    ACCEL_MODES,
    make_kernel,
    numpy_available,
    resolve_accel_mode,
)
from repro.bench.baseline import check_against_baseline, speedup_of
from repro.data import RecordCollection, random_integer_collection
from repro.data.records import (
    SIGNATURE_BITS,
    popcount,
    signature_of,
    signature_overlap_bound,
)
from repro.index.inverted import BoundedInvertedIndex, PostingColumns
from repro.similarity import Jaccard

from conftest import rounded_multiset

token_set = st.sets(st.integers(min_value=0, max_value=500), max_size=40)

ACCEL_UNDER_TEST = [m for m in ("python", "numpy") if m != "numpy" or numpy_available()]


class TestSignatureBound:
    @given(token_set, token_set)
    @settings(max_examples=300, deadline=None)
    def test_overlap_bound_is_never_below_true_overlap(self, x, y):
        # The load-bearing exactness property: pruning below α is safe
        # only because this bound can never undercut the true overlap.
        bound = signature_overlap_bound(
            signature_of(sorted(x)), signature_of(sorted(y)), len(x), len(y)
        )
        assert bound >= len(x & y)

    @given(token_set)
    @settings(max_examples=100, deadline=None)
    def test_identical_records_bound_is_exact(self, x):
        sig = signature_of(sorted(x))
        assert signature_overlap_bound(sig, sig, len(x), len(x)) == len(x)

    def test_signature_fits_width(self):
        rng = random.Random(5)
        tokens = [rng.randrange(10**6) for __ in range(1000)]
        assert signature_of(tokens) < (1 << SIGNATURE_BITS)

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount((1 << 127) | 5) == 3


class TestKernelEquivalence:
    @pytest.mark.parametrize("accel", ACCEL_UNDER_TEST)
    def test_matches_oracle_with_invariants(self, accel):
        rng = random.Random(97)
        for trial in range(8):
            coll = random_integer_collection(
                rng.randint(10, 80),
                universe=rng.randint(8, 40),
                max_size=rng.randint(2, 10),
                rng=rng,
            )
            k = rng.randint(1, 40)
            options = TopkOptions(accel=accel, check_invariants=True)
            got = rounded_multiset(topk_join(coll, k, options=options))
            want = rounded_multiset(naive_topk(coll, k))
            assert got == want, "accel=%s trial=%d" % (accel, trial)

    @pytest.mark.parametrize("accel", ACCEL_UNDER_TEST)
    def test_matches_accel_off_exactly(self, accel):
        rng = random.Random(131)
        coll = random_integer_collection(120, universe=50, max_size=12, rng=rng)
        baseline = topk_join(coll, 60, options=TopkOptions(accel="off"))
        accelerated = topk_join(coll, 60, options=TopkOptions(accel=accel))
        assert rounded_multiset(accelerated) == rounded_multiset(baseline)

    @pytest.mark.parametrize("accel", ACCEL_UNDER_TEST)
    def test_ablations_compose_with_accel(self, accel):
        # The kernels must honor every paper ablation toggle.
        rng = random.Random(17)
        coll = random_integer_collection(60, universe=25, max_size=8, rng=rng)
        options = TopkOptions(
            accel=accel,
            positional_filter=False,
            suffix_filter=False,
            access_optimization=False,
            verification_mode="all",
            seed_results=False,
            check_invariants=True,
        )
        got = rounded_multiset(topk_join(coll, 25, options=options))
        assert got == rounded_multiset(naive_topk(coll, 25))

    def test_bitmap_counters_populated(self):
        rng = random.Random(7)
        coll = random_integer_collection(200, universe=80, max_size=10, rng=rng)
        stats = TopkStats()
        topk_join(coll, 30, options=TopkOptions(accel="python"), stats=stats)
        assert stats.bitmap_checked > 0
        assert 0 < stats.bitmap_pruned <= stats.bitmap_checked
        assert stats.bitmap_hit_rate == stats.bitmap_pruned / stats.bitmap_checked
        off = TopkStats()
        topk_join(coll, 30, options=TopkOptions(accel="off"), stats=off)
        assert off.bitmap_checked == 0 and off.bitmap_pruned == 0
        assert off.bitmap_hit_rate == 0.0


class TestAccelModeResolution:
    def test_modes(self):
        assert resolve_accel_mode("off") == "off"
        assert resolve_accel_mode("python") == "python"
        assert resolve_accel_mode("on") in ("python", "numpy")
        with pytest.raises(ValueError):
            resolve_accel_mode("turbo")
        assert set(ACCEL_MODES) == {"on", "python", "numpy", "off"}

    def test_off_builds_no_kernel(self):
        coll = RecordCollection.from_integer_sets([[1, 2], [1, 3]])
        kernel = make_kernel(
            coll, Jaccard(), TopkOptions(accel="off"), None, None, None, TopkStats()
        )
        assert kernel is None

    def test_invalid_option_value_raises_at_join_time(self):
        coll = RecordCollection.from_integer_sets([[1, 2], [1, 3]])
        with pytest.raises(ValueError):
            topk_join(coll, 1, options=TopkOptions(accel="turbo"))


class TestPostingColumns:
    def test_append_cut_roundtrip(self):
        columns = PostingColumns()
        for i in range(6):
            columns.append(i, i + 1, 1.0 - i / 10)
        assert len(columns) == 6
        assert columns.tuples()[2] == (2, 3, pytest.approx(0.8))
        assert columns.cut(4) == 2
        assert len(columns) == 4
        assert columns.cut(4) == 0

    def test_bounded_index_counters(self):
        index = BoundedInvertedIndex()
        for i in range(5):
            index.add(7, i, 1, 0.9)
        index.add(8, 9, 2, 0.5)
        assert index.entry_count == 6
        assert index.peak_entries == 6
        assert index.truncate(7, 2) == 3
        assert index.entry_count == 3
        assert index.deleted == 3
        assert index.postings(7) == [(0, 1, 0.9), (1, 1, 0.9)]
        assert index.truncate(99, 0) == 0


class TestBaselineGate:
    def _report(self, on=0.1, off=0.5):
        return {
            "schema": 3,
            "entries": [
                {"dataset": "dblp", "k": 100, "accel": "off", "wall_s": off},
                {"dataset": "dblp", "k": 100, "accel": "on", "wall_s": on},
            ],
        }

    def test_identical_reports_pass(self):
        report = self._report()
        assert check_against_baseline(report, report) == []

    def test_speedup_computed(self):
        assert speedup_of(self._report(on=0.1, off=0.5)) == pytest.approx(5.0)

    def test_regression_detected_after_calibration(self):
        # Same machine speed (off time unchanged) but the accelerated
        # path got 2x slower: the gate must fire.
        baseline = self._report(on=0.1, off=0.5)
        current = self._report(on=0.2, off=0.5)
        failures = check_against_baseline(current, baseline)
        assert any("exceeds" in f for f in failures)

    def test_slower_machine_does_not_trip_gate(self):
        # Everything 3x slower (a slower CI box): calibration absorbs it.
        baseline = self._report(on=0.1, off=0.5)
        current = self._report(on=0.3, off=1.5)
        assert check_against_baseline(current, baseline) == []

    def test_lost_speedup_detected(self):
        baseline = self._report(on=0.1, off=0.5)
        current = self._report(on=0.42, off=0.5)
        failures = check_against_baseline(current, baseline, slowdown_limit=10.0)
        assert any("speedup" in f for f in failures)

    def test_no_common_cells(self):
        baseline = {"entries": []}
        failures = check_against_baseline(self._report(), baseline)
        assert failures

    def test_stream_row_below_floor_trips_gate(self):
        baseline = self._report()
        current = self._report()
        current["stream"] = {
            "dataset": "dblp", "k": 50, "window": 200, "events": 260,
            "wall_incremental_s": 1.0, "wall_recompute_s": 1.2,
            "speedup": 1.2,
        }
        failures = check_against_baseline(current, baseline)
        assert any("incremental-vs-recompute" in f for f in failures)

    def test_stream_row_above_floor_passes(self):
        baseline = self._report()
        current = self._report()
        current["stream"] = {
            "dataset": "dblp", "k": 50, "window": 200, "events": 260,
            "wall_incremental_s": 1.0, "wall_recompute_s": 5.0,
            "speedup": 5.0,
        }
        assert check_against_baseline(current, baseline) == []

    def test_report_without_stream_row_is_not_gated(self):
        report = self._report()
        assert check_against_baseline(report, report) == []

    def test_measure_stream_smoke(self):
        from repro.bench.baseline import measure_stream

        row = measure_stream(window=10, events=30)
        assert row["events"] == 30
        assert row["wall_incremental_s"] > 0
        assert row["wall_recompute_s"] > 0
        assert row["speedup"] > 0


class TestBenchJsonCli:
    def test_bench_json_smoke(self, capsys):
        from repro.cli import main

        assert main(["bench", "--json", "--k", "5"]) == 0
        out = capsys.readouterr().out
        import json

        report = json.loads(out)
        assert report["schema"] == 3
        modes = {(e["k"], e["accel"]) for e in report["entries"]}
        assert (5, "on") in modes and (5, "off") in modes
