"""Tests for the accelerated hot path (bitmap prefilter, scan kernels).

Covers the exactness contract of :mod:`repro.accel.kernel` — the bitmap
signature bound must never undercut a true overlap, and every kernel must
be tie-equivalent to the historical loop — plus the flat posting columns
and the benchmark-baseline gate logic.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TopkOptions, TopkStats, naive_topk, topk_join
from repro.accel.kernel import (
    ACCEL_MODES,
    make_kernel,
    native_available,
    numpy_available,
    resolve_accel_mode,
)
from repro.bench.baseline import (
    carry_kernel2_reference,
    check_against_baseline,
    speedup_of,
)
from repro.data import RecordCollection, random_integer_collection
from repro.data.records import (
    SIGNATURE_BITS,
    SUPPORTED_SIGNATURE_BITS,
    popcount,
    signature_of,
    signature_overlap_bound,
    signature_width,
)
from repro.index.inverted import BoundedInvertedIndex, PostingColumns
from repro.similarity import Jaccard

from conftest import rounded_multiset

token_set = st.sets(st.integers(min_value=0, max_value=500), max_size=40)

ACCEL_UNDER_TEST = [m for m in ("python", "numpy") if m != "numpy" or numpy_available()]
# "native" resolves down the fallback ladder when numba is absent, so it
# is always safe to run — with numba it exercises the compiled kernel,
# without it the resolution ladder itself.
ACCEL_UNDER_TEST.append("native")


class TestSignatureBound:
    @given(token_set, token_set)
    @settings(max_examples=300, deadline=None)
    def test_overlap_bound_is_never_below_true_overlap(self, x, y):
        # The load-bearing exactness property: pruning below α is safe
        # only because this bound can never undercut the true overlap.
        bound = signature_overlap_bound(
            signature_of(sorted(x)), signature_of(sorted(y)), len(x), len(y)
        )
        assert bound >= len(x & y)

    @pytest.mark.parametrize("bits", SUPPORTED_SIGNATURE_BITS)
    @given(token_set, token_set)
    @settings(max_examples=60, deadline=None)
    def test_overlap_bound_conservative_at_every_width(self, bits, x, y):
        # Narrow signatures fold more tokens per bit and wide ones
        # fewer, but the Hamming bound must stay conservative at every
        # supported width — exactness cannot depend on --sig-bits.
        bound = signature_overlap_bound(
            signature_of(sorted(x), bits),
            signature_of(sorted(y), bits),
            len(x),
            len(y),
        )
        assert bound >= len(x & y)

    @pytest.mark.parametrize("bits", SUPPORTED_SIGNATURE_BITS)
    def test_signature_fits_configured_width(self, bits):
        rng = random.Random(bits)
        tokens = sorted({rng.randrange(10**6) for __ in range(500)})
        assert 0 <= signature_of(tokens, bits) < (1 << bits)

    def test_signature_width_validation(self):
        assert signature_width(256) == 256
        with pytest.raises(ValueError):
            signature_width(100)
        with pytest.raises(ValueError):
            signature_width(0)

    @given(token_set)
    @settings(max_examples=100, deadline=None)
    def test_identical_records_bound_is_exact(self, x):
        sig = signature_of(sorted(x))
        assert signature_overlap_bound(sig, sig, len(x), len(x)) == len(x)

    def test_signature_fits_width(self):
        rng = random.Random(5)
        tokens = [rng.randrange(10**6) for __ in range(1000)]
        assert signature_of(tokens) < (1 << SIGNATURE_BITS)

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount((1 << 127) | 5) == 3


class TestKernelEquivalence:
    @pytest.mark.parametrize("accel", ACCEL_UNDER_TEST)
    def test_matches_oracle_with_invariants(self, accel):
        rng = random.Random(97)
        for trial in range(8):
            coll = random_integer_collection(
                rng.randint(10, 80),
                universe=rng.randint(8, 40),
                max_size=rng.randint(2, 10),
                rng=rng,
            )
            k = rng.randint(1, 40)
            options = TopkOptions(accel=accel, check_invariants=True)
            got = rounded_multiset(topk_join(coll, k, options=options))
            want = rounded_multiset(naive_topk(coll, k))
            assert got == want, "accel=%s trial=%d" % (accel, trial)

    @pytest.mark.parametrize("accel", ACCEL_UNDER_TEST)
    def test_matches_accel_off_exactly(self, accel):
        rng = random.Random(131)
        coll = random_integer_collection(120, universe=50, max_size=12, rng=rng)
        baseline = topk_join(coll, 60, options=TopkOptions(accel="off"))
        accelerated = topk_join(coll, 60, options=TopkOptions(accel=accel))
        assert rounded_multiset(accelerated) == rounded_multiset(baseline)

    @pytest.mark.parametrize("bits", SUPPORTED_SIGNATURE_BITS)
    def test_every_width_matches_accel_off(self, bits):
        # Cross-width kernel equivalence: the signature width tunes the
        # prefilter's selectivity, never the answer.
        rng = random.Random(bits)
        coll = random_integer_collection(100, universe=45, max_size=10, rng=rng)
        baseline = topk_join(coll, 40, options=TopkOptions(accel="off"))
        for accel in ACCEL_UNDER_TEST:
            got = topk_join(
                coll, 40,
                options=TopkOptions(
                    accel=accel, sig_bits=bits, check_invariants=True
                ),
            )
            assert rounded_multiset(got) == rounded_multiset(baseline), (
                "accel=%s bits=%d" % (accel, bits)
            )

    @pytest.mark.parametrize("accel", ACCEL_UNDER_TEST)
    def test_batch_verify_off_matches(self, accel):
        # The first-generation per-survivor verification tail must stay
        # a drop-in twin of the batched pass.
        rng = random.Random(23)
        coll = random_integer_collection(110, universe=40, max_size=11, rng=rng)
        batched = topk_join(
            coll, 45, options=TopkOptions(accel=accel, batch_verify=True)
        )
        sequential = topk_join(
            coll, 45,
            options=TopkOptions(
                accel=accel, batch_verify=False, check_invariants=True
            ),
        )
        assert rounded_multiset(sequential) == rounded_multiset(batched)

    @pytest.mark.parametrize("accel", ACCEL_UNDER_TEST)
    def test_unsupported_width_raises_in_every_mode(self, accel):
        coll = RecordCollection.from_integer_sets([[1, 2], [2, 3]])
        with pytest.raises(ValueError):
            topk_join(coll, 1, options=TopkOptions(accel=accel, sig_bits=96))
        with pytest.raises(ValueError):
            topk_join(coll, 1, options=TopkOptions(accel="off", sig_bits=96))

    @pytest.mark.parametrize("accel", ACCEL_UNDER_TEST)
    def test_ablations_compose_with_accel(self, accel):
        # The kernels must honor every paper ablation toggle.
        rng = random.Random(17)
        coll = random_integer_collection(60, universe=25, max_size=8, rng=rng)
        options = TopkOptions(
            accel=accel,
            positional_filter=False,
            suffix_filter=False,
            access_optimization=False,
            verification_mode="all",
            seed_results=False,
            check_invariants=True,
        )
        got = rounded_multiset(topk_join(coll, 25, options=options))
        assert got == rounded_multiset(naive_topk(coll, 25))

    def test_bitmap_counters_populated(self):
        rng = random.Random(7)
        coll = random_integer_collection(200, universe=80, max_size=10, rng=rng)
        stats = TopkStats()
        topk_join(coll, 30, options=TopkOptions(accel="python"), stats=stats)
        assert stats.bitmap_checked > 0
        assert 0 < stats.bitmap_pruned <= stats.bitmap_checked
        assert stats.bitmap_hit_rate == stats.bitmap_pruned / stats.bitmap_checked
        off = TopkStats()
        topk_join(coll, 30, options=TopkOptions(accel="off"), stats=off)
        assert off.bitmap_checked == 0 and off.bitmap_pruned == 0
        assert off.bitmap_hit_rate == 0.0


class TestAccelModeResolution:
    def test_modes(self):
        assert resolve_accel_mode("off") == "off"
        assert resolve_accel_mode("python") == "python"
        assert resolve_accel_mode("on") in ("python", "numpy")
        # "native" never raises: it falls down the ladder when numba is
        # missing or cannot compile on this platform.
        resolved = resolve_accel_mode("native")
        if native_available():
            assert resolved == "native"
        else:
            assert resolved in ("numpy", "python")
        with pytest.raises(ValueError):
            resolve_accel_mode("turbo")
        assert set(ACCEL_MODES) == {"on", "native", "python", "numpy", "off"}

    def test_off_builds_no_kernel(self):
        coll = RecordCollection.from_integer_sets([[1, 2], [1, 3]])
        kernel = make_kernel(
            coll, Jaccard(), TopkOptions(accel="off"), None, None, None, TopkStats()
        )
        assert kernel is None

    def test_invalid_option_value_raises_at_join_time(self):
        coll = RecordCollection.from_integer_sets([[1, 2], [1, 3]])
        with pytest.raises(ValueError):
            topk_join(coll, 1, options=TopkOptions(accel="turbo"))


@pytest.mark.skipif(not numpy_available(), reason="requires numpy")
class TestNativeImplParity:
    """The plain-Python loop bodies numba jits must match the vectorized
    kernel bit-for-bit.  Running them uncompiled keeps the native path
    covered on boxes without numba — the same source is what the ladder
    compiles when numba is present.
    """

    def _kernel(self, coll, k=20, sig_bits=128):
        from repro.accel.kernel import NumpyScanKernel
        from repro.core.results import TopKBuffer
        from repro.core.verification import VerificationRegistry

        sim = Jaccard()
        return NumpyScanKernel(
            coll,
            sim,
            TopkOptions(accel="numpy", sig_bits=sig_bits),
            TopKBuffer(k),
            VerificationRegistry(sim),
            None,
            TopkStats(),
            None,
        )

    def test_prefilter_impl_matches_numpy_core(self):
        from repro.accel.native import _prefilter_impl

        rng = random.Random(99)
        coll = random_integer_collection(300, universe=120, max_size=14, rng=rng)
        kernel = self._kernel(coll)
        np = kernel._np
        sizes = kernel._sizes_np
        for rid, s_k in ((0, 0.2), (7, 0.35), (42, 0.6)):
            size_x = int(sizes[rid])
            tab = kernel._threshold_tab(size_x, s_k)
            rids_np = np.asarray(
                [rng.randrange(len(coll)) for __ in range(64)], dtype=np.int64
            )
            sizes_y = sizes.take(rids_np, mode="clip")
            positions = np.asarray(
                [rng.randrange(1, int(s) + 1) for s in sizes_y.tolist()],
                dtype=np.int64,
            )
            rest_x = size_x - 1
            ok, ps, pb = kernel._prefilter_core(
                rid, rids_np, sizes_y, positions, tab, rest_x
            )
            ok_out = np.empty(len(rids_np), dtype=np.bool_)
            ps2, pb2 = _prefilter_impl(
                rids_np, sizes_y, positions, True,
                tab[0], tab[1], kernel._sig_words, rid, rest_x, ok_out,
            )
            assert ok_out.tolist() == ok.tolist()
            assert (ps2, pb2) == (ps, pb)
            # Positional filter off: same mask, same pass counts.
            ok, ps, pb = kernel._prefilter_core(
                rid, rids_np, sizes_y, None, tab, rest_x
            )
            ps2, pb2 = _prefilter_impl(
                rids_np, sizes_y, positions[:0], False,
                tab[0], tab[1], kernel._sig_words, rid, rest_x, ok_out,
            )
            assert ok_out.tolist() == ok.tolist()
            assert (ps2, pb2) == (ps, pb)

    def test_segment_overlaps_impl_matches_numpy(self):
        from repro.accel.native import _segment_overlaps_impl

        rng = random.Random(5)
        coll = random_integer_collection(150, universe=60, max_size=12, rng=rng)
        kernel = self._kernel(coll)
        np = kernel._np
        kernel._ensure_batch_state()
        rid = 3
        tokens_x = coll.records[rid].tokens
        tok_x = np.asarray(tokens_x, dtype=np.int64)
        kernel._pos_map[tok_x] = np.arange(1, len(tokens_x) + 1, dtype=np.int64)
        try:
            survivor_rids = np.asarray(
                sorted(rng.sample(range(len(coll)), 40)), dtype=np.int64
            )
            starts = kernel._tok_offsets.take(survivor_rids, mode="clip")
            lengths = kernel._sizes_np.take(survivor_rids, mode="clip")
            expected = kernel._segment_overlaps(starts, lengths)
            outs = [np.empty(len(lengths), dtype=np.int64) for __ in range(5)]
            _segment_overlaps_impl(
                np.ascontiguousarray(starts),
                np.ascontiguousarray(lengths),
                kernel._tok_flat,
                kernel._pos_map,
                *outs,
            )
            assert [o.tolist() for o in outs] == [list(e) for e in expected]
            # And the counts really are the exact intersection sizes.
            xs = set(tokens_x)
            for i, rid_y in enumerate(survivor_rids.tolist()):
                truth = len(xs & set(coll.records[rid_y].tokens))
                assert outs[0][i] == truth
        finally:
            kernel._pos_map[tok_x] = 0


class TestPostingColumns:
    def test_append_cut_roundtrip(self):
        columns = PostingColumns()
        for i in range(6):
            columns.append(i, i + 1, 1.0 - i / 10)
        assert len(columns) == 6
        assert columns.tuples()[2] == (2, 3, pytest.approx(0.8))
        assert columns.cut(4) == 2
        assert len(columns) == 4
        assert columns.cut(4) == 0

    def test_bounded_index_counters(self):
        index = BoundedInvertedIndex()
        for i in range(5):
            index.add(7, i, 1, 0.9)
        index.add(8, 9, 2, 0.5)
        assert index.entry_count == 6
        assert index.peak_entries == 6
        assert index.truncate(7, 2) == 3
        assert index.entry_count == 3
        assert index.deleted == 3
        assert index.postings(7) == [(0, 1, 0.9), (1, 1, 0.9)]
        assert index.truncate(99, 0) == 0


class TestBaselineGate:
    def _report(self, on=1.0, off=5.0):
        return {
            "schema": 4,
            "entries": [
                {
                    "dataset": "dblp", "k": 100, "accel": "off",
                    "wall_s": off, "sig_bits": 128,
                },
                {
                    "dataset": "dblp", "k": 100, "accel": "on",
                    "wall_s": on, "sig_bits": 128,
                },
            ],
        }

    def test_identical_reports_pass(self):
        report = self._report()
        assert check_against_baseline(report, report) == []

    def test_speedup_computed(self):
        assert speedup_of(self._report(on=1.0, off=5.0)) == pytest.approx(5.0)

    def test_regression_detected_after_calibration(self):
        # Same machine speed (off time unchanged) but the accelerated
        # path got 2x slower: the gate must fire.  Walls are large
        # enough that the absolute noise floor cannot absorb the 2x.
        baseline = self._report(on=1.0, off=5.0)
        current = self._report(on=2.0, off=5.0)
        failures = check_against_baseline(current, baseline)
        assert any("exceeds" in f for f in failures)

    def test_noise_floor_absorbs_small_absolute_jitter(self):
        # Sub-second accel cells see tens-of-ms scheduler jitter that a
        # pure ratio limit would misread as a regression.
        baseline = self._report(on=0.10, off=0.5)
        current = self._report(on=0.15, off=0.5)
        assert check_against_baseline(current, baseline) == []

    def test_slower_machine_does_not_trip_gate(self):
        # Everything 3x slower (a slower CI box): calibration absorbs it.
        baseline = self._report(on=1.0, off=5.0)
        current = self._report(on=3.0, off=15.0)
        assert check_against_baseline(current, baseline) == []

    def test_lost_speedup_detected(self):
        baseline = self._report(on=1.0, off=5.0)
        current = self._report(on=4.2, off=5.0)
        failures = check_against_baseline(current, baseline, slowdown_limit=10.0)
        assert any("speedup" in f for f in failures)

    def test_kernel2_gate_passes_with_margin(self):
        baseline = self._report(on=1.0, off=5.0)
        baseline["kernel2"] = {"dataset": "dblp", "k": 100, "gen1_wall_s": 2.0}
        current = self._report(on=1.0, off=5.0)
        assert check_against_baseline(current, baseline) == []

    def test_kernel2_gate_fires_below_required_speedup(self):
        # gen-1 reference 1.2s vs 1.0s measured: only 1.2x, below 1.5x.
        baseline = self._report(on=1.0, off=5.0)
        baseline["kernel2"] = {"dataset": "dblp", "k": 100, "gen1_wall_s": 1.2}
        current = self._report(on=1.0, off=5.0)
        failures = check_against_baseline(current, baseline)
        assert any("second-gen kernel speedup" in f for f in failures)

    def test_kernel2_gate_rescales_with_machine_speed(self):
        # A 3x slower box slows the gen-1 reference too: no false alarm.
        baseline = self._report(on=1.0, off=5.0)
        baseline["kernel2"] = {"dataset": "dblp", "k": 100, "gen1_wall_s": 2.0}
        current = self._report(on=3.0, off=15.0)
        assert check_against_baseline(current, baseline) == []

    def test_carry_kernel2_reference_from_schema3_on_cell(self):
        # Recording over the last gen-1 baseline: its accel-on cell IS
        # the gen-1 measurement, rescaled onto the recording machine.
        previous = self._report(on=1.0, off=5.0)
        previous["schema"] = 3
        report = self._report(on=0.5, off=10.0)
        carry_kernel2_reference(report, previous, dataset="dblp", k=100)
        row = report["kernel2"]
        assert row["dataset"] == "dblp" and row["k"] == 100
        assert row["gen1_wall_s"] == pytest.approx(2.0)  # 1.0 x (10/5)
        assert row["speedup"] == pytest.approx(4.0)

    def test_carry_kernel2_reference_forwards_existing_row(self):
        # Later re-records must forward the frozen reference, not reset
        # it to the (now second-gen) accel-on cell.
        previous = self._report(on=1.0, off=5.0)
        previous["kernel2"] = {"dataset": "dblp", "k": 100, "gen1_wall_s": 3.0}
        report = self._report(on=1.0, off=5.0)
        carry_kernel2_reference(report, previous, dataset="dblp", k=100)
        assert report["kernel2"]["gen1_wall_s"] == pytest.approx(3.0)

    def test_carry_kernel2_reference_missing_cells_is_noop(self):
        report = self._report()
        carry_kernel2_reference(report, {"entries": []}, dataset="dblp", k=100)
        assert "kernel2" not in report

    def test_baseline_without_kernel2_row_is_not_gated(self):
        report = self._report()
        assert check_against_baseline(report, report) == []

    def test_no_common_cells(self):
        baseline = {"entries": []}
        failures = check_against_baseline(self._report(), baseline)
        assert failures

    def test_stream_row_below_floor_trips_gate(self):
        baseline = self._report()
        current = self._report()
        current["stream"] = {
            "dataset": "dblp", "k": 50, "window": 200, "events": 260,
            "wall_incremental_s": 1.0, "wall_recompute_s": 1.2,
            "speedup": 1.2,
        }
        failures = check_against_baseline(current, baseline)
        assert any("incremental-vs-recompute" in f for f in failures)

    def test_stream_row_above_floor_passes(self):
        baseline = self._report()
        current = self._report()
        current["stream"] = {
            "dataset": "dblp", "k": 50, "window": 200, "events": 260,
            "wall_incremental_s": 1.0, "wall_recompute_s": 5.0,
            "speedup": 5.0,
        }
        assert check_against_baseline(current, baseline) == []

    def test_report_without_stream_row_is_not_gated(self):
        report = self._report()
        assert check_against_baseline(report, report) == []

    def test_measure_stream_smoke(self):
        from repro.bench.baseline import measure_stream

        row = measure_stream(window=10, events=30)
        assert row["events"] == 30
        assert row["wall_incremental_s"] > 0
        assert row["wall_recompute_s"] > 0
        assert row["speedup"] > 0


class TestBenchJsonCli:
    def test_bench_json_smoke(self, capsys):
        from repro.cli import main

        assert main(["bench", "--json", "--k", "5"]) == 0
        out = capsys.readouterr().out
        import json

        report = json.loads(out)
        assert report["schema"] == 4
        modes = {(e["k"], e["accel"]) for e in report["entries"]}
        assert (5, "on") in modes and (5, "off") in modes
