"""Tests for the interactive TopkSession extension."""

import pytest

from repro import TopkSession, naive_topk
from repro.data import random_integer_collection

from conftest import rounded_multiset


@pytest.fixture
def collection(rng):
    return random_integer_collection(50, universe=25, max_size=8, rng=rng)


class TestTop:
    def test_matches_oracle_at_each_depth(self, collection):
        session = TopkSession(collection, max_k=30)
        for k in (1, 5, 17, 30):
            got = rounded_multiset(session.top(k))
            want = rounded_multiset(naive_topk(collection, k))
            assert got == want

    def test_deepening_is_monotone(self, collection):
        session = TopkSession(collection, max_k=25)
        ten = session.top(10)
        twenty = session.top(20)
        assert twenty[:10] == ten

    def test_shrinking_served_from_cache(self, collection):
        session = TopkSession(collection, max_k=25)
        twenty = session.top(20)
        events_after = session.stats.events
        five = session.top(5)
        assert five == twenty[:5]
        assert session.stats.events == events_after, "no extra work done"

    def test_lazy_start(self, collection):
        session = TopkSession(collection, max_k=25)
        assert session.results_so_far == []

    def test_exceeding_max_k_raises(self, collection):
        session = TopkSession(collection, max_k=10)
        with pytest.raises(ValueError, match="max_k"):
            session.top(11)

    def test_invalid_max_k(self, collection):
        with pytest.raises(ValueError):
            TopkSession(collection, max_k=0)


class TestIteration:
    def test_iterates_descending(self, collection):
        session = TopkSession(collection, max_k=20)
        values = [r.similarity for r in session]
        assert values == sorted(values, reverse=True)

    def test_iteration_after_partial_top(self, collection):
        session = TopkSession(collection, max_k=15)
        session.top(5)
        streamed = list(session)
        assert rounded_multiset(streamed) == rounded_multiset(
            naive_topk(collection, 15)
        )

    def test_exhaustion_on_tiny_collection(self):
        tiny = random_integer_collection(3, universe=5, max_size=3, seed=1)
        session = TopkSession(tiny, max_k=50)
        streamed = list(session)
        assert len(streamed) <= 3  # at most 3 pairs exist


class TestLaziness:
    def test_shallow_request_does_less_work(self, rng):
        coll = random_integer_collection(120, universe=60, max_size=10, rng=rng)
        shallow = TopkSession(coll, max_k=100)
        shallow.top(1)
        deep = TopkSession(coll, max_k=100)
        deep.top(100)
        assert shallow.stats.events <= deep.stats.events
