"""Streaming metamorphic relations: the engine against itself and batch."""

from __future__ import annotations

import random

import pytest

from repro.oracle.differential import StreamCase
from repro.oracle.fuzz import STREAM_GENERATORS
from repro.oracle.metamorphic import (
    split_advances,
    stream_metamorphic_failures,
)
from repro.stream.engine import StreamingTopkEngine
from repro.stream.events import StreamEvent


class TestSplitAdvances:
    def test_integral_amount_splits_one_plus_rest(self):
        [first, second] = split_advances([StreamEvent.advance(3.0)])
        assert first == StreamEvent.advance(1.0)
        assert second == StreamEvent.advance(2.0)

    def test_fractional_amount_splits_in_half(self):
        [first, second] = split_advances([StreamEvent.advance(1.5)])
        assert first.amount + second.amount == 1.5

    def test_zero_and_unit_advances_unchanged(self):
        events = [StreamEvent.advance(0.0), StreamEvent.advance(1.0)]
        assert split_advances(events) == events

    def test_non_advance_events_pass_through(self):
        events = [StreamEvent.insert([1, 2]), StreamEvent.expire(2)]
        assert split_advances(events) == events

    def test_count_policy_amounts_stay_integral(self):
        out = split_advances([StreamEvent.advance(4.0)])
        assert all(e.amount == int(e.amount) for e in out)


class TestStreamRelations:
    def test_relaxation_trace_holds_all_relations(self):
        case = StreamCase.make(
            [
                StreamEvent.insert([1, 2, 3]),
                StreamEvent.insert([1, 2, 3]),
                StreamEvent.insert([1, 2]),
                StreamEvent.expire(1),
                StreamEvent.insert([4, 5]),
            ],
            k=2,
            window=3,
        )
        assert stream_metamorphic_failures(case) == []

    def test_time_policy_trace_holds_all_relations(self):
        case = StreamCase.make(
            [
                StreamEvent.insert([1, 2]),
                StreamEvent.advance(1.0),
                StreamEvent.insert([1, 2, 3]),
                StreamEvent.advance(2.0),
                StreamEvent.insert([2, 3]),
                StreamEvent.advance(0.5),
            ],
            k=2,
            window=3,
            policy="time",
            similarity="cosine",
        )
        assert stream_metamorphic_failures(case) == []

    def test_generated_cases_hold(self):
        rng = random.Random(4321)
        names = sorted(STREAM_GENERATORS)
        for index in range(30):
            case = STREAM_GENERATORS[names[index % len(names)]](rng)
            failures = stream_metamorphic_failures(case)
            assert failures == [], "\n".join(failures)

    def test_detects_divergence_from_batch(self, monkeypatch):
        """A broken engine must fail the final-window relation."""
        original = StreamingTopkEngine.results

        def lossy(self):
            return original(self)[:-1]

        monkeypatch.setattr(StreamingTopkEngine, "results", lossy)
        case = StreamCase.make(
            [StreamEvent.insert([1, 2]), StreamEvent.insert([1, 2])], k=1
        )
        failures = stream_metamorphic_failures(case)
        assert any("batch join" in message for message in failures)

    def test_detects_advance_sensitivity(self, monkeypatch):
        """An engine whose state depends on advance granularity fails
        the splitting relation."""
        original = StreamingTopkEngine.advance

        def chunky(self, amount):
            # Deliberately wrong: a fractional advance is rounded up, so
            # advance(0.75) twice expires more than advance(1.5) once.
            if self._options.window_policy == "time":
                import math

                return original(self, math.ceil(amount))
            return original(self, amount)

        monkeypatch.setattr(StreamingTopkEngine, "advance", chunky)
        case = StreamCase.make(
            [
                StreamEvent.insert([1, 2]),
                StreamEvent.insert([1, 2]),
                StreamEvent.advance(1.5),
                StreamEvent.insert([2, 3]),
            ],
            k=2,
            window=2,
            policy="time",
        )
        failures = stream_metamorphic_failures(case)
        assert failures  # batch relation and/or splitting relation

    @pytest.mark.slow
    def test_generated_cases_hold_deep(self):
        rng = random.Random(8765)
        names = sorted(STREAM_GENERATORS)
        for index in range(150):
            case = STREAM_GENERATORS[names[index % len(names)]](rng)
            failures = stream_metamorphic_failures(case)
            assert failures == [], "\n".join(failures)
