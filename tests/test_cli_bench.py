"""Tests for the `repro bench` CLI subcommand."""

from repro.cli import main


class TestBenchCommand:
    def test_list_experiments(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for experiment in ("table1", "table2", "figure3a", "figure4-dblp",
                           "figure5a"):
            assert experiment in out

    def test_unknown_experiment(self, capsys):
        assert main(["bench", "--experiment", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_no_arguments_is_an_error(self, capsys):
        assert main(["bench"]) == 2

    def test_table1_runs(self, capsys):
        assert main(["bench", "--experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "dblp" in out and "trec" in out

    def test_table2_runs(self, capsys):
        assert main(["bench", "--experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "0.95" in out
