"""Determinism: same input + options => byte-identical output ordering.

The documented tie policy: results are ordered by descending similarity,
ties by ascending ``(x, y)`` (``JoinResult.sort_key``); *which* of the
pairs tied exactly at the k-th similarity make the cut may differ between
backends (each is a valid top-k answer), but any single backend must be
bit-for-bit reproducible run over run, and all backends must agree on
everything above the tie boundary.
"""

from __future__ import annotations

from repro.core.topk_join import TopkOptions, topk_join
from repro.data.synthetic import random_integer_collection, tie_heavy_collection
from repro.oracle.reference import assert_topk_equivalent
from repro.parallel import parallel_topk_join

_OPTIONS = TopkOptions(check_invariants=True)


def _collections():
    for seed in range(3):
        yield random_integer_collection(40, 25, 8, seed=seed)
        yield tie_heavy_collection(30, seed=seed)


def test_sequential_runs_are_byte_identical():
    for coll in _collections():
        first = topk_join(coll, 7, options=_OPTIONS)
        second = topk_join(coll, 7, options=_OPTIONS)
        assert repr(first) == repr(second)


def test_parallel_runs_are_byte_identical():
    """Four workers, unordered task completion — the merger must still
    produce one canonical answer every time."""
    coll = random_integer_collection(120, 40, 10, seed=4)
    runs = [
        repr(
            parallel_topk_join(
                coll, 9, options=TopkOptions(), workers=4, shards=5
            )
        )
        for __ in range(3)
    ]
    assert len(set(runs)) == 1


def test_sequential_and_parallel_agree():
    for coll in _collections():
        sequential = topk_join(coll, 7, options=_OPTIONS)
        parallel = parallel_topk_join(
            coll, 7, options=_OPTIONS, workers=4, shards=5
        )
        assert_topk_equivalent(
            parallel, sequential, context="parallel vs sequential"
        )


def test_results_follow_documented_sort_order():
    """Sequential: non-increasing similarity, ties in discovery order
    (progressive emission streams results and cannot retro-sort ties).
    Parallel: fully sorted by ``JoinResult.sort_key`` (the merger's
    documented deterministic tie-break).  Both: canonical pair ids."""
    for coll in _collections():
        sequential = topk_join(coll, 7, options=_OPTIONS)
        values = [r.similarity for r in sequential]
        assert values == sorted(values, reverse=True)
        assert all(r.x < r.y for r in sequential)

        parallel = parallel_topk_join(
            coll, 7, options=_OPTIONS, workers=1, shards=4
        )
        keys = [r.sort_key() for r in parallel]
        assert keys == sorted(keys)
        assert all(r.x < r.y for r in parallel)


def test_option_object_reuse_is_safe():
    """TopkOptions is shared/frozen state: running twice with the same
    instance (and the invariant hooks) must not accumulate anything."""
    coll = random_integer_collection(30, 20, 6, seed=8)
    options = TopkOptions(check_invariants=True)
    first = topk_join(coll, 5, options=options)
    second = topk_join(coll, 5, options=options)
    assert first == second
