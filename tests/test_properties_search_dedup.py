"""Property-based tests for the search and dedup layers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import RecordCollection
from repro.dedup import cluster_by_threshold
from repro.search import SearchIndex
from repro.similarity import Jaccard

# Heavy Hypothesis/fuzz suite: runs in the slow CI lane.
pytestmark = pytest.mark.slow

token_sets = st.lists(
    st.sets(st.integers(min_value=0, max_value=18), min_size=1, max_size=7),
    min_size=2,
    max_size=14,
)
queries = st.sets(
    st.integers(min_value=0, max_value=18), min_size=1, max_size=7
).map(lambda s: tuple(sorted(s)))
thresholds = st.sampled_from([0.25, 0.5, 0.75, 1.0])


@given(sets=token_sets, query=queries, t=thresholds)
@settings(max_examples=80, deadline=None)
def test_threshold_search_exact(sets, query, t):
    coll = RecordCollection.from_integer_sets(list(sets), dedupe=False)
    index = SearchIndex(coll)
    sim = Jaccard()
    got = {(hit.rid, round(hit.similarity, 9))
           for hit in index.threshold_search(query, t)}
    want = set()
    for record in coll:
        value = sim.similarity(query, record.tokens)
        if value >= t:
            want.add((record.rid, round(value, 9)))
    assert got == want


@given(sets=token_sets, query=queries, k=st.integers(min_value=1, max_value=8))
@settings(max_examples=80, deadline=None)
def test_topk_search_exact_multiset(sets, query, k):
    coll = RecordCollection.from_integer_sets(list(sets), dedupe=False)
    index = SearchIndex(coll)
    sim = Jaccard()
    got = sorted(
        (round(hit.similarity, 9) for hit in index.topk_search(query, k)),
        reverse=True,
    )
    want = sorted(
        (
            round(sim.similarity(query, record.tokens), 9)
            for record in coll
        ),
        reverse=True,
    )[:k]
    assert got == want


@given(sets=token_sets, t=thresholds)
@settings(max_examples=60, deadline=None)
def test_clustering_is_transitive_closure(sets, t):
    coll = RecordCollection.from_integer_sets(list(sets), dedupe=False)
    clustering = cluster_by_threshold(coll, t)
    sim = Jaccard()

    # Reference: BFS over the naive >= t graph.
    n = len(coll)
    adjacency = {i: [] for i in range(n)}
    for a in range(n):
        for b in range(a + 1, n):
            if sim.similarity(coll[a].tokens, coll[b].tokens) >= t:
                adjacency[a].append(b)
                adjacency[b].append(a)
    component = {}
    for start in range(n):
        if start in component:
            continue
        queue = [start]
        component[start] = start
        while queue:
            node = queue.pop()
            for neighbour in adjacency[node]:
                if neighbour not in component:
                    component[neighbour] = start
                    queue.append(neighbour)

    for a in range(n):
        for b in range(n):
            same_reference = component[a] == component[b]
            same_clustering = (
                clustering.cluster_of[a] == clustering.cluster_of[b]
            )
            assert same_reference == same_clustering


@given(sets=token_sets, t=thresholds)
@settings(max_examples=40, deadline=None)
def test_representatives_one_per_cluster(sets, t):
    coll = RecordCollection.from_integer_sets(list(sets), dedupe=False)
    clustering = cluster_by_threshold(coll, t)
    representatives = clustering.representatives(coll)
    assert len(representatives) == len(clustering.clusters)
    owning = {clustering.cluster_of[rid] for rid in representatives}
    assert len(owning) == len(representatives)
