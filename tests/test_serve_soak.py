"""Soak and backpressure tests for the serve daemon (slow lane).

A deliberately fast producer against a tiny ingestion queue plus an
artificial per-event apply delay must trigger the declared degradation
policy — and the engine's window must stay *exact* for the accepted
subsequence: replaying exactly the accepted events in an in-process
engine reproduces the daemon's final top-k byte for byte.
"""

from __future__ import annotations

import json
import threading
from typing import List, Optional, Tuple

import pytest

from repro.core import TopkOptions
from repro.oracle.differential import sockets_usable
from repro.serve import (
    InProcessDaemon,
    ServeClient,
    ServeOptions,
    open_servers,
)
from repro.stream.engine import StreamingTopkEngine

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        not sockets_usable(), reason="cannot bind local sockets"
    ),
]


def make_engine(k: int = 3, window: int = 64) -> StreamingTopkEngine:
    return StreamingTopkEngine(
        k,
        options=TopkOptions(window_size=window),
        mode="incremental",
    )


def event_tokens(i: int) -> List[int]:
    return [i % 17, (i * 3) % 17, (i * 7) % 17]


def flood(
    host: str,
    port: int,
    count: int,
    degradation: str,
) -> Tuple[List[Optional[bool]], int]:
    """Pipeline *count* inserts without waiting, then collect replies.

    Returns (per-event accepted flags, error count).  A flag is True
    for applied events, False for shed/rejected ones.  Every insert
    gets exactly one reply — shed/rejected acks come inline from the
    session loop, applied acks from the writer task once the event is
    really in the engine — so this reads until all ids are resolved.
    """
    assert degradation in ("shed", "reject")
    with ServeClient(host, port, timeout=30.0) as client:
        for i in range(count):
            client.send_raw(
                json.dumps(
                    {"verb": "insert", "id": i, "tokens": event_tokens(i)}
                ).encode("utf-8")
                + b"\n"
            )
        accepted: List[Optional[bool]] = [None] * count
        errors = 0
        unresolved = count
        while unresolved:
            frame = client.read_frame()
            rid = frame.get("id")
            if not isinstance(rid, int) or not 0 <= rid < count:
                continue
            assert accepted[rid] is None, "duplicate reply for %d" % rid
            if frame.get("ok"):
                accepted[rid] = not frame.get("shed", False)
            else:
                errors += 1
                accepted[rid] = False
            unresolved -= 1
    return accepted, errors


class TestBackpressure:
    def test_shed_policy_degrades_and_stays_exact(self):
        events = 120
        with InProcessDaemon(
            lambda: make_engine(),
            ServeOptions(
                queue_limit=4, degradation="shed", ingest_delay=0.002
            ),
        ) as (host, port):
            accepted, errors = flood(host, port, events, "shed")
            with ServeClient(host, port) as client:
                rows = client.request("query")["results"]
                stats = client.request("stats")["stats"]
        assert errors == 0  # shed policy acks with shed=true, not errors
        assert stats["shed"] > 0, stats
        assert stats["accepted"] + stats["shed"] == events
        assert stats["queue_peak"] <= 4
        applied = [i for i, flag in enumerate(accepted) if flag]
        assert len(applied) == stats["accepted"]
        # Exactness: replay ONLY the accepted events in-process.
        with make_engine() as oracle:
            for i in applied:
                oracle.insert(event_tokens(i))
            expected = [
                [r.x, r.y, r.similarity] for r in oracle.results()
            ]
        # The daemon renumbers records densely over accepted events, so
        # similarity rows must match exactly (ids are both dense).
        assert rows == expected

    def test_reject_policy_answers_overloaded(self):
        events = 120
        with InProcessDaemon(
            lambda: make_engine(),
            ServeOptions(
                queue_limit=4, degradation="reject", ingest_delay=0.002
            ),
        ) as (host, port):
            accepted, errors = flood(host, port, events, "reject")
            with ServeClient(host, port) as client:
                stats = client.request("stats")["stats"]
        assert errors > 0
        assert stats["rejected"] == errors
        assert stats["accepted"] + stats["rejected"] == events
        applied = [i for i, flag in enumerate(accepted) if flag]
        assert len(applied) == stats["accepted"]

    def test_sustained_mixed_load_leaves_no_residue(self):
        """Three producer threads, one subscriber, modest soak; then
        every socket, task, and thread is gone."""
        events_per_producer = 60
        with InProcessDaemon(
            lambda: make_engine(k=2, window=16),
            ServeOptions(
                queue_limit=8, degradation="shed", ingest_delay=0.001
            ),
        ) as (host, port):
            with ServeClient(host, port) as sub:
                sub.request("subscribe")

                def produce(offset: int) -> None:
                    with ServeClient(host, port, timeout=30.0) as c:
                        for i in range(events_per_producer):
                            c.request(
                                "insert",
                                tokens=event_tokens(offset + i),
                            )

                threads = [
                    threading.Thread(target=produce, args=(n * 1000,))
                    for n in range(3)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=60.0)
                assert not any(t.is_alive() for t in threads)
                sub.request("ping")
                stats = sub.request("stats")["stats"]
                deltas = [
                    f for f in sub.pushes if f.get("event") == "delta"
                ]
            assert stats["accepted"] + stats["shed"] == (
                3 * events_per_producer
            )
            seqs = [f["seq"] for f in deltas]
            assert seqs == sorted(seqs)
        assert open_servers() == []
        names = [t.name for t in threading.enumerate()]
        assert "repro-serve-daemon" not in names

    def test_subscriber_overflow_evicts_not_blocks(self):
        """A subscriber that never reads must be evicted from the
        subscription set (outbox overflow), not stall the writer."""
        events = 400
        with InProcessDaemon(
            lambda: make_engine(k=8, window=8),
            ServeOptions(queue_limit=512, outbox_limit=4),
        ) as (host, port):
            lazy = ServeClient(host, port)
            try:
                lazy.request("subscribe")
                # Never read again; flood from another connection.
                with ServeClient(host, port, timeout=60.0) as producer:
                    for i in range(events):
                        producer.request(
                            "insert", tokens=event_tokens(i)
                        )
                    stats = producer.request("stats")["stats"]
                assert stats["accepted"] == events
                assert stats["subscriber_evictions"] >= 1
                assert stats["subscribers"] == 0
            finally:
                lazy.close()
