"""Regression tests for the float-equality eliminations.

The ``bound-safety`` checker bans ``==``/``!=`` on similarity-valued
floats.  Each production site it surfaced was rewritten — monotone
caches now test ``>`` (s_k only rises) and the result buffer tracks
entry liveness by integer sequence number.  One test per rewritten
site pins the behaviour the old comparison happened to provide plus
the cases it could not.
"""

from __future__ import annotations

from repro import TopkOptions, naive_topk, topk_join
from repro.core.results import TopKBuffer
from repro.core.verification import VerificationRegistry
from repro.data import RecordCollection, random_integer_collection
from repro.similarity import Jaccard
from repro.similarity.epsilon import sim_eq, sim_ge
from repro.similarity.overlap import overlap_with_common_positions

from conftest import rounded_multiset


class TestBufferSequenceLiveness:
    """``TopKBuffer.pop_emittable`` — liveness by sequence, not value."""

    def test_readded_at_identical_similarity_emits_once(self):
        # Evict a pair, re-add it at the *same* similarity.  The stale
        # descending-heap entry now carries the exact float of the live
        # one; a value-equality check cannot tell them apart, the
        # sequence number can.  Exactly one emission either way.
        buffer = TopKBuffer(1)
        buffer.add((0, 1), 0.5)
        buffer.add((0, 2), 0.75)  # evicts (0, 1)
        assert (0, 1) not in buffer
        # The buffer dedupes *members*; the evicted pair may return.
        assert buffer.add((0, 1), 0.75) is False  # below s_k: rejected
        emitted = buffer.pop_emittable(0.0)
        assert [pair for pair, __ in emitted] == [(0, 2)]
        assert list(buffer.drain()) == []

    def test_stale_entry_at_same_value_as_live_neighbour(self):
        # Two pairs at the same similarity; one is evicted by a better
        # pair.  Its stale heap entry must not shadow or duplicate the
        # surviving equal-valued pair.
        buffer = TopKBuffer(2)
        buffer.add((0, 1), 0.5)
        buffer.add((0, 2), 0.5)
        buffer.add((0, 3), 0.9)  # evicts one of the 0.5 pairs
        emitted = buffer.pop_emittable(0.0)
        assert len(emitted) == 2
        assert emitted[0][0] == (0, 3)
        assert sim_eq(emitted[0][1], 0.9)
        assert sim_eq(emitted[1][1], 0.5)
        assert list(buffer.drain()) == []

    def test_emitted_values_match_membership(self):
        buffer = TopKBuffer(3)
        for i, value in enumerate((0.2, 0.4, 0.6, 0.8, 0.4, 0.9)):
            buffer.add((0, i), value)
        for pair, similarity in buffer.drain():
            assert sim_eq(similarity, buffer.similarity_of(pair))


class TestMonotoneCacheRefresh:
    """Caches keyed on s_k refresh on every rise (``>`` not ``!=``)."""

    def test_verification_prefix_cache_refreshes_on_rise(self):
        registry = VerificationRegistry(Jaccard())
        probe = overlap_with_common_positions((1, 2, 9), (1, 2, 8))
        # At s_k=0: prefix covers position 2, pair stored.
        registry.record((0, 1), probe, 3, 3, 0.0)
        assert (0, 1) in registry.fast_set()
        # After s_k rose to 0.9 the prefix shrinks to length 1 and the
        # same probe no longer qualifies — stale cached prefixes from
        # the 0.0 era would wrongly store it.
        registry.record((0, 2), probe, 3, 3, 0.9)
        assert (0, 2) not in registry.fast_set()

    def test_prefix_cache_repeated_equal_s_k_hits_cache(self):
        registry = VerificationRegistry(Jaccard())
        probe = overlap_with_common_positions((1, 2, 9), (1, 2, 8))
        for i in range(5):
            registry.record((0, i), probe, 3, 3, 0.5)
        # One cache generation for all five records: the cached prefix
        # map still holds the sizes just probed.
        assert registry._prefix_cache  # populated, not cleared per call


class TestJoinCorrectnessAcrossKernels:
    """End-to-end: the rewritten s_k-rise checks keep joins exact."""

    def _workload(self):
        # A chain forces many s_k rises: record i shares most tokens
        # with record i+1, so the bound climbs repeatedly mid-join.
        sets = [list(range(i, i + 12)) for i in range(0, 60, 2)]
        return RecordCollection.from_integer_sets(sets)

    def test_sequential_matches_oracle_after_rewrite(self):
        coll = self._workload()
        opts = TopkOptions(accel="off")
        got = rounded_multiset(topk_join(coll, 15, options=opts))
        assert got == rounded_multiset(naive_topk(coll, 15))

    def test_python_kernel_matches_oracle_after_rewrite(self):
        coll = self._workload()
        opts = TopkOptions(accel="python")
        got = rounded_multiset(topk_join(coll, 15, options=opts))
        assert got == rounded_multiset(naive_topk(coll, 15))

    def test_numpy_kernel_matches_oracle_after_rewrite(self):
        coll = self._workload()
        opts = TopkOptions(accel="numpy")
        got = rounded_multiset(topk_join(coll, 15, options=opts))
        assert got == rounded_multiset(naive_topk(coll, 15))

    def test_random_workload_all_results_clear_final_bound(self):
        coll = random_integer_collection(80, universe=120, max_size=12, seed=7)
        results = topk_join(coll, 25)
        floor = min(r.similarity for r in results)
        for result in results:
            assert sim_ge(result.similarity, floor)
