"""Property tests: the sharded parallel join is exact.

``parallel_topk_join`` must return the same similarity multiset as the
sequential ``topk_join`` on every input — any k, any shard count, any
similarity function, and in particular on tie-heavy collections where the
k-th value is shared by many pairs (the only regime where the shared-bound
pruning argument has any room to go wrong).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Cosine,
    Dice,
    Jaccard,
    Overlap,
    parallel_topk_join,
    topk_join,
)
from repro.data import RecordCollection

from conftest import rounded_multiset

# Heavy Hypothesis/fuzz suite: runs in the slow CI lane.
pytestmark = pytest.mark.slow

token_sets = st.lists(
    st.sets(st.integers(min_value=0, max_value=20), min_size=1, max_size=8),
    min_size=2,
    max_size=18,
)
# A tiny universe of tiny sets: nearly every pair collides with some other
# pair's similarity, so the k-th value is almost always a fat tie.
tie_heavy_sets = st.lists(
    st.sets(st.integers(min_value=0, max_value=5), min_size=1, max_size=3),
    min_size=3,
    max_size=16,
)
similarities = st.sampled_from([Jaccard(), Cosine(), Dice(), Overlap()])
shard_counts = st.integers(min_value=1, max_value=5)


def _assert_equivalent(coll, k, sim, shards):
    sequential = topk_join(coll, k, similarity=sim)
    parallel = parallel_topk_join(coll, k, similarity=sim, workers=1, shards=shards)
    assert rounded_multiset(parallel) == rounded_multiset(sequential)
    # Pairs strictly above the k-th value are forced; only ties at the
    # boundary are interchangeable.
    if sequential:
        s_k = sequential[-1].similarity
        forced = {(r.x, r.y) for r in sequential if r.similarity > s_k + 1e-9}
        got = {(r.x, r.y) for r in parallel if r.similarity > s_k + 1e-9}
        assert got == forced
    # Reported similarities are genuine.
    records = coll.records
    for r in parallel:
        expected = sim.similarity(records[r.x].tokens, records[r.y].tokens)
        assert abs(expected - r.similarity) < 1e-9


@given(
    sets=token_sets,
    k=st.integers(min_value=1, max_value=20),
    shards=shard_counts,
)
@settings(max_examples=60, deadline=None)
def test_parallel_matches_sequential_jaccard(sets, k, shards):
    coll = RecordCollection.from_integer_sets(list(sets), dedupe=False)
    _assert_equivalent(coll, k, Jaccard(), shards)


@given(
    sets=token_sets,
    k=st.integers(min_value=1, max_value=15),
    sim=similarities,
    shards=shard_counts,
)
@settings(max_examples=40, deadline=None)
def test_parallel_matches_sequential_all_similarities(sets, k, sim, shards):
    coll = RecordCollection.from_integer_sets(list(sets), dedupe=False)
    _assert_equivalent(coll, k, sim, shards)


@given(
    sets=tie_heavy_sets,
    k=st.integers(min_value=1, max_value=12),
    shards=shard_counts,
)
@settings(max_examples=60, deadline=None)
def test_parallel_matches_sequential_tie_heavy(sets, k, shards):
    coll = RecordCollection.from_integer_sets(list(sets), dedupe=False)
    _assert_equivalent(coll, k, Jaccard(), shards)


def test_parallel_pool_path_matches_sequential(small_random_collections):
    """The real multiprocessing path (workers > 1) is exact too."""
    for coll in small_random_collections[:6]:
        for k in (1, 5, 25):
            sequential = topk_join(coll, k)
            parallel = parallel_topk_join(coll, k, workers=2, shards=3)
            assert rounded_multiset(parallel) == rounded_multiset(sequential)
