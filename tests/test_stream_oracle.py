"""The streaming oracle harness: differential sweeps, fuzzing, corpus.

The acceptance bar for the streaming engine: the incremental engine is
tie-aware identical to a full recompute (and to the brute-force window
oracle) after **every** event of hundreds of fuzzed event sequences.
"""

from __future__ import annotations

import random

import pytest

from repro.oracle.differential import (
    StreamCase,
    available_stream_backends,
    run_stream_differential,
)
from repro.oracle.fuzz import (
    STREAM_GENERATORS,
    StreamFuzzReport,
    fuzz_stream_run,
    load_stream_case,
    replay_corpus,
    save_stream_case,
    shrink_stream_case,
)
from repro.oracle.invariants import InvariantViolation, StreamCheckHooks
from repro.oracle.reference import naive_window_topk
from repro.result import JoinResult
from repro.stream.engine import StreamingTopkEngine
from repro.stream.events import StreamEvent


def generated_cases(seed, count):
    """*count* seeded cases, cycling through the trace generators."""
    rng = random.Random(seed)
    names = sorted(STREAM_GENERATORS)
    return [
        STREAM_GENERATORS[names[i % len(names)]](rng) for i in range(count)
    ]


class TestNaiveWindowOracle:
    def test_scores_all_live_pairs(self):
        live = [(0, (1, 2)), (3, (1, 2)), (7, (9,))]
        results = naive_window_topk(live, k=3)
        assert [(r.x, r.y) for r in results] == [(0, 3), (0, 7), (3, 7)]
        assert results[0].similarity == pytest.approx(1.0)

    def test_empty_records_excluded_from_pair_space(self):
        live = [(0, (1, 2)), (1, ()), (2, (1, 2))]
        results = naive_window_topk(live, k=5)
        assert [(r.x, r.y) for r in results] == [(0, 2)]

    def test_boundary_ties_keep_smallest_pairs(self):
        live = [(0, (1,)), (1, (1,)), (2, (1,))]
        results = naive_window_topk(live, k=2)
        assert [(r.x, r.y) for r in results] == [(0, 1), (0, 2)]

    def test_k_below_one_rejected(self):
        with pytest.raises(ValueError):
            naive_window_topk([], k=0)


class TestStreamDifferential:
    def test_backend_registry(self):
        names = available_stream_backends()
        assert "stream-incremental" in names
        assert "stream-recompute" in names
        assert "stream-trace-on" in names

    def test_unknown_backend_rejected(self):
        case = StreamCase.make([StreamEvent.insert([1])], k=1)
        with pytest.raises(ValueError, match="unknown stream backends"):
            run_stream_differential(case, backends=["stream-nope"])

    def test_relaxation_trace_passes_all_backends(self):
        case = StreamCase.make(
            [
                StreamEvent.insert([1, 2, 3]),
                StreamEvent.insert([1, 2, 3]),
                StreamEvent.insert([1, 2]),
                StreamEvent.expire(1),
                StreamEvent.insert([4, 5]),
            ],
            k=2,
            window=3,
        )
        assert run_stream_differential(case) == []

    def test_catches_an_engine_that_drops_results(self, monkeypatch):
        """The harness must flag a broken engine, not vacuously pass."""
        monkeypatch.setattr(
            StreamingTopkEngine, "results", lambda self: []
        )
        case = StreamCase.make(
            [StreamEvent.insert([1, 2]), StreamEvent.insert([1, 2])], k=1
        )
        failures = run_stream_differential(
            case, backends=["stream-incremental"]
        )
        assert failures
        # The runtime invariants (stream-completeness) fire before the
        # oracle comparison even gets a look.
        assert "mismatch" in failures[0] or "invariant" in failures[0]

    def test_catches_lost_deltas(self, monkeypatch):
        """A result present without an 'enter' delta must be flagged."""
        original = StreamingTopkEngine.apply
        monkeypatch.setattr(
            StreamingTopkEngine,
            "apply",
            lambda self, event: original(self, event) and [],
        )
        case = StreamCase.make(
            [StreamEvent.insert([1, 2]), StreamEvent.insert([1, 2])], k=1
        )
        failures = run_stream_differential(
            case, backends=["stream-incremental"]
        )
        assert failures

    def test_fuzzed_sequences_fast_subset(self):
        """40 seeded traces, every backend, checked after every event."""
        for case in generated_cases(seed=1234, count=40):
            failures = run_stream_differential(case)
            assert failures == [], "\n".join(failures)

    def test_fuzzed_sequences_acceptance_bar(self):
        """>= 200 fuzzed event sequences: the incremental engine stays
        tie-aware identical to the full recompute and to the window
        oracle after every single event."""
        for case in generated_cases(seed=20260808, count=200):
            failures = run_stream_differential(case)
            assert failures == [], "\n".join(failures)

    @pytest.mark.slow
    def test_fuzzed_sequences_deep(self):
        report = fuzz_stream_run(seed=97, iterations=400)
        assert report.ok, report.failures
        assert report.iterations == 400


class TestStreamCheckHooks:
    def test_on_trim_flags_wrong_head(self):
        from repro.index.inverted import InvertedIndex

        index = InvertedIndex()
        index.add(5, rid=0, position=1)
        hooks = StreamCheckHooks()
        with pytest.raises(InvariantViolation) as caught:
            hooks.on_trim(index, token=5, sid=1)
        assert caught.value.invariant == "stream-trim-head"

    def test_on_refill_flags_rising_bound(self):
        hooks = StreamCheckHooks()
        with pytest.raises(InvariantViolation) as caught:
            hooks.on_refill(0.4, 0.5)
        assert caught.value.invariant == "stream-s_k-relaxation"

    def test_after_event_flags_foreign_result_pair(self):
        engine = StreamingTopkEngine(1)
        with engine:
            engine.insert([1, 2])
            engine.insert([1, 2])
            hooks = StreamCheckHooks()
            engine._buffer.rebuild([((0, 9), 1.0)])
            with pytest.raises(InvariantViolation) as caught:
                hooks.after_event(engine)
        assert caught.value.invariant == "stream-window-membership"

    def test_after_event_flags_incomplete_buffer(self):
        engine = StreamingTopkEngine(1)
        with engine:
            engine.insert([1, 2])
            engine.insert([1, 2])
            engine._buffer.rebuild([])
            hooks = StreamCheckHooks()
            with pytest.raises(InvariantViolation) as caught:
                hooks.after_event(engine)
        assert caught.value.invariant == "stream-completeness"


class TestShrinker:
    def test_shrinks_to_single_relevant_event(self):
        case = StreamCase.make(
            [
                StreamEvent.insert([1, 2, 3]),
                StreamEvent.expire(1),
                StreamEvent.insert([4, 5]),
                StreamEvent.advance(1),
                StreamEvent.insert([6]),
            ],
            k=4,
            window=6,
        )

        def failing(candidate):
            big = any(
                e.kind == "insert" and len(e.tokens) >= 2
                for e in candidate.events
            )
            return ["boom"] if big else []

        shrunk = shrink_stream_case(case, failing)
        assert len(shrunk.events) == 1
        assert len(shrunk.events[0].tokens) == 2
        assert shrunk.k == 1
        assert shrunk.window == 0

    def test_keeps_failing_case_intact_when_nothing_shrinks(self):
        case = StreamCase.make([StreamEvent.insert([1, 2])], k=1)
        shrunk = shrink_stream_case(case, lambda c: ["always"])
        assert len(shrunk.events) == 1

    def test_passing_case_is_returned_unchanged(self):
        case = StreamCase.make(
            [StreamEvent.insert([1, 2]), StreamEvent.expire(1)], k=2,
            window=3,
        )
        assert shrink_stream_case(case, lambda c: []) == case


class TestCorpusPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        case = StreamCase.make(
            [
                StreamEvent.insert([1, 2]),
                StreamEvent.expire(2),
                StreamEvent.advance(1.5),
            ],
            k=3,
            window=4,
            policy="time",
            similarity="cosine",
        )
        path = save_stream_case(
            str(tmp_path), case, ["failure text"], seed=9,
            generator="stream-mixed", description="roundtrip",
        )
        assert path.endswith(".json")
        loaded, document = load_stream_case(path)
        assert loaded == case
        assert document["failures"] == ["failure text"]
        assert document["policy"] == "time"

    def test_digest_is_content_addressed(self, tmp_path):
        case = StreamCase.make([StreamEvent.insert([1])], k=1)
        first = save_stream_case(str(tmp_path), case, [])
        second = save_stream_case(str(tmp_path), case, ["other"])
        assert first == second

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "stream_bad.json"
        path.write_text('{"schema": 99}')
        with pytest.raises(ValueError, match="schema"):
            load_stream_case(str(path))

    def test_replay_corpus_covers_stream_cases(self, tmp_path, monkeypatch):
        case = StreamCase.make(
            [StreamEvent.insert([1, 2]), StreamEvent.insert([1, 2])], k=1
        )
        save_stream_case(str(tmp_path), case, [])
        assert replay_corpus(str(tmp_path)) == []
        monkeypatch.setattr(
            StreamingTopkEngine, "results", lambda self: []
        )
        failing = replay_corpus(str(tmp_path))
        assert len(failing) == 1


class TestFuzzStreamRun:
    def test_clean_run_reports_ok(self):
        report = fuzz_stream_run(seed=5, iterations=15)
        assert isinstance(report, StreamFuzzReport)
        assert report.ok
        assert report.iterations == 15

    def test_on_progress_called_each_iteration(self):
        seen = []
        fuzz_stream_run(
            seed=5, iterations=6,
            on_progress=lambda done, found: seen.append((done, found)),
        )
        assert seen == [(i, 0) for i in range(1, 7)]

    def test_budget_stops_early(self):
        report = fuzz_stream_run(seed=5, iterations=10_000, budget=0.0)
        assert report.iterations == 0

    def test_failures_are_shrunk_and_saved(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            StreamingTopkEngine, "results", lambda self: []
        )
        report = fuzz_stream_run(
            seed=11, iterations=30, max_failures=1,
            backends=["stream-incremental"], corpus_dir=str(tmp_path),
        )
        assert len(report.failures) == 1
        __, generator, shrunk, failures, path = report.failures[0]
        assert generator in STREAM_GENERATORS
        assert failures
        assert path is not None
        loaded, document = load_stream_case(path)
        assert loaded == shrunk
        assert document["failures"] == failures

    def test_deterministic_in_seed(self):
        first = fuzz_stream_run(seed=21, iterations=9)
        second = fuzz_stream_run(seed=21, iterations=9)
        assert first.iterations == second.iterations == 9
        assert first.ok and second.ok


def test_results_type_is_join_result():
    engine = StreamingTopkEngine(1)
    with engine:
        engine.insert([1, 2])
        engine.insert([1, 2])
        [result] = engine.results()
    assert isinstance(result, JoinResult)
