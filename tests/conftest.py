"""Shared test fixtures and helpers."""

from __future__ import annotations

import random
from typing import List, Sequence

import pytest

from repro import JoinResult, RecordCollection
from repro.data import random_integer_collection


def make_collection(*token_sets: Sequence[int]) -> RecordCollection:
    """Build a collection directly from integer token sets (no dedupe)."""
    return RecordCollection.from_integer_sets(list(token_sets), dedupe=False)


def rounded_multiset(results: Sequence[JoinResult], digits: int = 9) -> List[float]:
    """Descending similarity multiset rounded for float-safe comparison."""
    return sorted((round(r.similarity, digits) for r in results), reverse=True)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20090401)


@pytest.fixture
def small_random_collections(rng):
    """A batch of small random collections exercising heavy tie/collision cases."""
    collections = []
    for __ in range(20):
        n = rng.randint(2, 35)
        collections.append(
            random_integer_collection(
                n,
                universe=rng.randint(4, 50),
                max_size=rng.randint(1, 10),
                rng=rng,
            )
        )
    return collections
