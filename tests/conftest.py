"""Shared test fixtures and helpers."""

from __future__ import annotations

import random
import sys
import threading
from typing import List, Sequence

import pytest

from repro import JoinResult, RecordCollection
from repro.data import random_integer_collection
from repro.parallel.shm import leaked_segments


def make_collection(*token_sets: Sequence[int]) -> RecordCollection:
    """Build a collection directly from integer token sets (no dedupe)."""
    return RecordCollection.from_integer_sets(list(token_sets), dedupe=False)


def rounded_multiset(results: Sequence[JoinResult], digits: int = 9) -> List[float]:
    """Descending similarity multiset rounded for float-safe comparison."""
    return sorted((round(r.similarity, digits) for r in results), reverse=True)


@pytest.fixture(autouse=True)
def no_leaked_shm_segments():
    """Fail any test that leaves a shared-memory segment on /dev/shm.

    The segment lifecycle contract (repro.parallel.shm) says the owner
    unlinks every segment it creates, success or crash; scanning the
    prefix after *every* test turns a leak anywhere in the suite into a
    precise failure instead of cross-machine /dev/shm pollution.  Leaks
    present *before* the test are reported by whichever test made them.
    """
    before = set(leaked_segments())
    yield
    fresh = [name for name in leaked_segments() if name not in before]
    assert not fresh, (
        "test leaked shared-memory segments: %r (the creating join must "
        "destroy_segment() in a finally block)" % fresh
    )


@pytest.fixture(autouse=True)
def no_leaked_serve_resources():
    """Fail any test that leaves a serve daemon (or its thread) running.

    Mirrors the shm fixture above for the service layer: every
    TopkServer registers itself in a live-server table on start and
    removes itself on shutdown, and every InProcessDaemon thread is
    named ``repro-serve-daemon`` — so a post-test scan turns a leaked
    event loop, socket, or daemon thread anywhere in the suite into a
    precise failure.  Checked lazily via sys.modules so the suite never
    pays an asyncio import for tests that don't touch serving.
    """
    yield
    server_module = sys.modules.get("repro.serve.server")
    if server_module is not None:
        leaked = server_module.open_servers()
        assert not leaked, (
            "test leaked running serve daemons: %r (stop() or shutdown() "
            "must run in a finally block)" % leaked
        )
    lingering = [
        thread.name
        for thread in threading.enumerate()
        if thread.name == "repro-serve-daemon" and thread.is_alive()
    ]
    assert not lingering, (
        "test leaked %d repro-serve-daemon thread(s); InProcessDaemon "
        "must be stopped (use it as a context manager)" % len(lingering)
    )


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20090401)


@pytest.fixture
def small_random_collections(rng):
    """A batch of small random collections exercising heavy tie/collision cases."""
    collections = []
    for __ in range(20):
        n = rng.randint(2, 35)
        collections.append(
            random_integer_collection(
                n,
                universe=rng.randint(4, 50),
                max_size=rng.randint(1, 10),
                rng=rng,
            )
        )
    return collections
