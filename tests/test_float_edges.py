"""Focused tests for floating-point edge behaviour in the bound math.

The join's filters compare float bounds against float thresholds; a single
ulp in the wrong direction could silently drop a qualifying pair.  The
design counters this with (a) exact integer fix-ups for every overlap
threshold and (b) conservative margins on the closed-form accessing
cutoff.  These tests hammer exactly those boundaries.
"""

import math
from fractions import Fraction

from repro.similarity import Cosine, Dice, Jaccard, Overlap

ALL = [Jaccard(), Cosine(), Dice(), Overlap()]


class TestRequiredOverlapAtExactThresholds:
    def test_threshold_equal_to_achievable_similarity(self):
        # Use thresholds that ARE achievable similarities (ratios), where
        # ceil() of a float product is most likely to be off by one.
        sim = Jaccard()
        for size_x in range(1, 30):
            for size_y in range(1, 30):
                limit = min(size_x, size_y)
                for overlap in range(0, limit + 1):
                    threshold = sim.from_overlap(overlap, size_x, size_y)
                    alpha = sim.required_overlap(threshold, size_x, size_y)
                    # alpha must be the least integer achieving >= t.
                    assert sim.from_overlap(alpha, size_x, size_y) >= threshold
                    if alpha > 0:
                        assert (
                            sim.from_overlap(alpha - 1, size_x, size_y)
                            < threshold
                        )

    def test_prefix_length_at_exact_thresholds(self):
        for sim in ALL:
            for size in range(1, 25):
                for p in range(1, size + 1):
                    threshold = sim.probing_upper_bound(size, p)
                    if threshold <= 0:
                        continue
                    length = sim.probing_prefix_length(size, threshold)
                    # Position p achieves exactly `threshold`, so the
                    # prefix must reach at least p.
                    assert length >= p


class TestRationalCrossCheck:
    def test_jaccard_required_overlap_vs_fractions(self):
        # Exact rational arithmetic as the referee.
        sim = Jaccard()
        for size_x in range(1, 20):
            for size_y in range(1, 20):
                for num in range(0, 10):
                    threshold = num / 10
                    alpha = sim.required_overlap(threshold, size_x, size_y)
                    limit = min(size_x, size_y)
                    exact = next(
                        (
                            o
                            for o in range(limit + 1)
                            if Fraction(o, size_x + size_y - o or 1)
                            >= Fraction(num, 10)
                        ),
                        limit + 1,
                    )
                    # Float thresholds n/10 are not exactly representable;
                    # alpha may differ from the rational answer only when
                    # the float and the fraction straddle a boundary value.
                    if alpha != exact:
                        boundary = sim.from_overlap(
                            min(alpha, exact), size_x, size_y
                        )
                        assert math.isclose(
                            boundary, threshold, rel_tol=1e-12, abs_tol=1e-12
                        )


class TestAccessingCutoffMargins:
    def test_cutoff_never_causes_wrong_prune(self):
        # For every bound below the cutoff, the exact accessing bound must
        # confirm prunability or the caller re-checks — verify the
        # invariant the fast path relies on: bounds ABOVE the cutoff
        # always pass the exact test.
        for sim in ALL:
            for bx_int in range(1, 21):
                bx = bx_int / 20
                for sk_int in range(0, 20):
                    s_k = sk_int / 20
                    cutoff = sim.accessing_cutoff(bx, s_k)
                    for by_int in range(1, 21):
                        by = by_int / 20
                        if by > cutoff:
                            assert sim.accessing_upper_bound(bx, by) > s_k

    def test_generic_fallback_cutoff(self):
        # The base-class binary-search fallback must satisfy the same
        # invariant as the closed forms.
        sim = Jaccard()
        generic = super(Jaccard, sim).accessing_cutoff
        for bx in (0.15, 0.5, 0.95):
            for s_k in (0.1, 0.45, 0.9):
                cutoff = generic(bx, s_k)
                for step in range(1, 40):
                    by = step / 40
                    if by > cutoff:
                        assert sim.accessing_upper_bound(bx, by) > s_k


class TestOverlapSimilarityIntegerThresholds:
    def test_thresholds_beyond_any_record(self):
        sim = Overlap()
        assert sim.required_overlap(50, 10, 10) == 11  # impossible marker
        assert sim.probing_prefix_length(10, 50) == 0

    def test_fractional_overlap_thresholds(self):
        sim = Overlap()
        # t = 2.5 requires an overlap of 3.
        assert sim.required_overlap(2.5, 10, 10) == 3
