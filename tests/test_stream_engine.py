"""Unit tests for the sliding-window streaming engine and its parts."""

from __future__ import annotations

import pytest

from repro.core.engine import EngineStateError
from repro.core.topk_join import TopkOptions
from repro.obs import Tracer
from repro.similarity.functions import Cosine
from repro.stream.buffer import StreamTopkBuffer
from repro.stream.engine import STREAM_MODES, StreamingTopkEngine
from repro.stream.events import (
    StreamEvent,
    events_from_lists,
    events_to_lists,
    format_event,
    load_event_file,
    parse_event,
    read_events,
    save_event_file,
)
from repro.stream.window import SlidingWindow


def make_engine(k=2, window=0, policy="count", **overrides):
    options = TopkOptions(
        window_size=window, window_policy=policy, **overrides
    )
    return StreamingTopkEngine(k, options=options)


class TestLifecycle:
    def test_insert_before_open_rejected(self):
        engine = make_engine()
        with pytest.raises(EngineStateError, match="call open"):
            engine.insert([1, 2])

    def test_reopen_after_close_rejected(self):
        engine = make_engine()
        with engine:
            engine.insert([1, 2])
        with pytest.raises(EngineStateError, match="cannot be reopened"):
            engine.open()

    def test_close_is_idempotent(self):
        engine = make_engine()
        engine.open()
        engine.close()
        engine.close()
        assert engine.closed

    def test_open_is_idempotent_while_open(self):
        engine = make_engine()
        engine.open()
        assert engine.open() is engine
        assert engine.is_open
        engine.close()

    def test_results_survive_close(self):
        engine = make_engine(k=1)
        with engine:
            engine.insert([1, 2])
            engine.insert([1, 2])
        [result] = engine.results()
        assert (result.x, result.y) == (0, 1)
        assert result.similarity == pytest.approx(1.0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown stream mode"):
            StreamingTopkEngine(2, mode="magic")
        assert STREAM_MODES == ("incremental", "recompute")

    def test_k_below_one_rejected(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            StreamingTopkEngine(0)

    def test_bound_provider_rejected(self):
        options = TopkOptions(bound_provider=lambda state: 0.0)
        with pytest.raises(ValueError, match="bound_provider"):
            StreamingTopkEngine(2, options=options)

    def test_bipartite_sides_rejected(self):
        options = TopkOptions(bipartite_sides=(0, 1))
        with pytest.raises(ValueError, match="self-join"):
            StreamingTopkEngine(2, options=options)

    def test_bad_window_policy_rejected_before_open(self):
        with pytest.raises(ValueError, match="unknown window policy"):
            make_engine(policy="session")

    def test_negative_window_rejected_before_open(self):
        with pytest.raises(ValueError, match="window size"):
            make_engine(window=-1)


class TestCountWindow:
    def test_arrival_displaces_oldest_when_full(self):
        engine = make_engine(k=3, window=2)
        with engine:
            engine.insert([1])
            engine.insert([2])
            engine.insert([3])
            assert engine.window_live == 2
            assert engine.live_sids() == [1, 2]

    def test_displaced_member_pairs_leave(self):
        engine = make_engine(k=3, window=2)
        with engine:
            engine.insert([1, 2])
            engine.insert([1, 2])
            deltas = engine.insert([9])
        leaves = [d for d in deltas if d.action == "leave"]
        assert {(d.x, d.y) for d in leaves} == {(0, 1)}

    def test_unbounded_window_never_displaces(self):
        engine = make_engine(k=1, window=0)
        with engine:
            for token in range(20):
                engine.insert([token])
            assert engine.window_live == 20

    def test_expire_clamps_to_window_length(self):
        engine = make_engine(k=1, window=0)
        with engine:
            engine.insert([1])
            deltas = engine.expire(5)
            assert engine.window_live == 0
            assert deltas == []

    def test_advance_expires_count(self):
        engine = make_engine(k=1, window=0)
        with engine:
            for token in range(4):
                engine.insert([token])
            engine.advance(3)
            assert engine.live_sids() == [3]

    def test_non_integral_advance_rejected(self):
        engine = make_engine(k=1, window=0)
        with engine:
            engine.insert([1])
            with pytest.raises(ValueError, match="integral"):
                engine.advance(1.5)

    def test_negative_advance_rejected(self):
        engine = make_engine(k=1)
        with engine:
            with pytest.raises(ValueError):
                engine.advance(-1)


class TestTimeWindow:
    def test_arrival_never_displaces(self):
        # Regression: a full-looking time window must keep every record
        # until the clock moves past it.
        engine = make_engine(k=1, window=1, policy="time")
        with engine:
            engine.insert([1, 2])
            engine.insert([1, 2])
            assert engine.window_live == 2
            [result] = engine.results()
            assert result.similarity == pytest.approx(1.0)

    def test_clock_advancing_expires(self):
        engine = make_engine(k=1, window=2, policy="time")
        with engine:
            engine.insert([1])          # arrival 0.0
            engine.advance(1.0)
            engine.insert([2])          # arrival 1.0
            engine.advance(1.0)         # clock 2.0: sid 0 falls out
            assert engine.live_sids() == [1]
            assert engine.clock == pytest.approx(2.0)

    def test_fractional_advance_accumulates(self):
        engine = make_engine(k=1, window=1, policy="time")
        with engine:
            engine.insert([1])
            engine.advance(0.5)
            assert engine.window_live == 1
            engine.advance(0.5)
            assert engine.window_live == 0


class TestDeltasAndRefill:
    def test_enter_then_leave_on_eviction(self):
        engine = make_engine(k=1)
        with engine:
            first = engine.insert([1, 2, 3])
            second = engine.insert([3, 4])   # enters with 0.25
            third = engine.insert([1, 2, 3])  # (0, 2) @ 1.0 evicts (0, 1)
        assert [d.action for d in first] == []
        assert [(d.action, d.x, d.y) for d in second] == [("enter", 0, 1)]
        assert [(d.action, d.x, d.y) for d in third] == [
            ("leave", 0, 1),
            ("enter", 0, 2),
        ]

    def test_refill_after_topk_member_expires(self):
        engine = make_engine(k=2, window=3)
        with engine:
            engine.insert([1, 2, 3])
            engine.insert([1, 2, 3])
            engine.insert([1, 2])
            # Expiring sid 0 kills both buffered pairs; the bound must
            # relax and a refill restores the exact top-2.
            engine.expire()
            assert engine.stats.refills == 1
            pairs = {(r.x, r.y) for r in engine.results()}
            assert pairs == {(1, 2)}
            engine.insert([4, 5])
            assert len(engine.results()) == 2

    def test_deltas_replay_to_results(self):
        engine = make_engine(k=3, window=4)
        shadow = {}
        with engine:
            for event in [
                StreamEvent.insert([1, 2, 3]),
                StreamEvent.insert([2, 3, 4]),
                StreamEvent.insert([1, 4]),
                StreamEvent.expire(1),
                StreamEvent.insert([1, 2]),
            ]:
                for delta in engine.apply(event):
                    if delta.action == "leave":
                        del shadow[(delta.x, delta.y)]
                    else:
                        shadow[(delta.x, delta.y)] = delta.similarity
            rows = {(r.x, r.y): r.similarity for r in engine.results()}
        assert shadow == rows

    def test_empty_record_occupies_slot_but_joins_nothing(self):
        engine = make_engine(k=1, window=2)
        with engine:
            engine.insert([1, 2])
            engine.insert([])
            assert engine.window_live == 2
            assert engine.nonempty_count == 1
            assert engine.results() == []
            engine.insert([1, 2])   # displaces sid 0: only (0, 2) dies
            assert engine.results() == []

    def test_duplicate_tokens_canonicalized(self):
        engine = make_engine(k=1)
        with engine:
            engine.insert([2, 1, 2, 1])
            engine.insert([1, 2])
        [result] = engine.results()
        assert result.similarity == pytest.approx(1.0)

    def test_s_k_zero_while_not_full(self):
        engine = make_engine(k=5)
        with engine:
            engine.insert([1, 2])
            engine.insert([1, 2])
            assert engine.s_k == 0.0

    def test_no_expired_sid_in_postings(self):
        engine = make_engine(k=2, window=2)
        with engine:
            engine.insert([1, 2])
            engine.insert([2, 3])
            engine.insert([3, 4])
            live = set(engine.live_sids())
            for __, sid in engine.index_entries():
                assert sid in live


class TestModesAndChecks:
    def test_recompute_mode_matches_incremental(self):
        events = [
            StreamEvent.insert([1, 2, 3]),
            StreamEvent.insert([2, 3]),
            StreamEvent.insert([1, 3, 4]),
            StreamEvent.expire(1),
            StreamEvent.insert([1, 2]),
            StreamEvent.advance(1),
        ]
        rows = {}
        for mode in STREAM_MODES:
            options = TopkOptions(window_size=4, window_policy="count")
            engine = StreamingTopkEngine(
                2, similarity=Cosine(), options=options, mode=mode
            )
            with engine:
                for event in events:
                    engine.apply(event)
                rows[mode] = [
                    (r.x, r.y, round(r.similarity, 9))
                    for r in engine.results()
                ]
        assert rows["incremental"] == rows["recompute"]

    def test_check_invariants_option_arms_hooks(self):
        engine = make_engine(k=2, window=3, check_invariants=True)
        with engine:
            engine.insert([1, 2, 3])
            engine.insert([1, 2, 3])
            engine.insert([1, 2])
            engine.expire()
            engine.insert([4, 5])
            assert engine._checks is not None
            assert engine._checks.events == 5

    def test_repro_check_env_arms_hooks(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        engine = make_engine(k=1)
        with engine:
            engine.insert([1, 2])
            assert engine._checks is not None

    def test_accel_off_matches_accel_on(self):
        events = [
            StreamEvent.insert([1, 2, 3]),
            StreamEvent.insert([2, 3, 4]),
            StreamEvent.insert([1, 2]),
            StreamEvent.insert([3, 4]),
        ]
        rows = {}
        for accel in ("on", "off"):
            engine = make_engine(k=2, window=3, accel=accel)
            with engine:
                for event in events:
                    engine.apply(event)
                rows[accel] = [
                    (r.x, r.y, round(r.similarity, 9))
                    for r in engine.results()
                ]
        assert rows["on"] == rows["off"]


class TestObservability:
    def test_tracer_records_phases_and_close_span(self):
        tracer = Tracer()
        engine = make_engine(k=2, window=3, trace=tracer)
        with engine:
            engine.insert([1, 2, 3])
            engine.insert([1, 2, 3])
            engine.insert([1, 2])
            engine.expire()
        phases = tracer.phase_times()
        assert "stream_ingest" in phases
        assert "stream_expire" in phases
        assert "stream_refill" in phases
        assert any(span.name == "stream_close" for span in tracer.spans)

    def test_metrics_text_exposes_stream_counters(self):
        engine = make_engine(k=2, window=3)
        with engine:
            engine.insert([1, 2, 3])
            engine.insert([1, 2, 3])
            engine.insert([1, 2])
            engine.expire()
        text = engine.metrics_text()
        assert "repro_stream_inserts_total 3" in text
        assert "repro_stream_expirations_total 1" in text
        assert "repro_stream_refills_total 1" in text
        assert "repro_stream_s_k" in text
        assert "repro_stream_window_live" in text

    def test_stats_peaks(self):
        engine = make_engine(k=1, window=2)
        with engine:
            engine.insert([1, 2, 3])
            engine.insert([1, 2])
            engine.insert([5])
            assert engine.stats.window_peak == 2
            assert engine.stats.index_entries_peak >= 3


class TestSlidingWindowUnit:
    def test_count_overflow_only_under_count_policy(self):
        count = SlidingWindow(2, "count")
        timed = SlidingWindow(2, "time")
        for window in (count, timed):
            window.append([1])
            window.append([2])
        assert count.count_overflow(arriving=1) == 1
        assert timed.count_overflow(arriving=1) == 0

    def test_pop_oldest_is_fifo(self):
        window = SlidingWindow(0, "count")
        window.append([1])
        window.append([2])
        assert window.pop_oldest().sid == 0
        assert window.pop_oldest().sid == 1
        with pytest.raises(LookupError):
            window.pop_oldest()

    def test_sids_never_recycle(self):
        window = SlidingWindow(0, "count")
        window.append([1])
        window.pop_oldest()
        assert window.append([2]).sid == 1

    def test_clock_cannot_move_backwards(self):
        window = SlidingWindow(2, "time")
        with pytest.raises(ValueError):
            window.advance_clock(-0.5)

    def test_timed_out_half_open_boundary(self):
        window = SlidingWindow(2, "time")
        window.append([1])          # arrival 0.0
        window.advance_clock(2.0)
        assert window.timed_out() == 1   # arrival <= clock - size


class TestStreamTopkBufferUnit:
    def test_s_k_zero_until_full(self):
        buffer = StreamTopkBuffer(2)
        buffer.add((0, 1), 0.9)
        assert buffer.s_k == 0.0
        buffer.add((0, 2), 0.5)
        assert buffer.s_k == pytest.approx(0.5)

    def test_ties_at_s_k_lose(self):
        buffer = StreamTopkBuffer(1)
        assert buffer.add((0, 1), 0.5) == (True, None)
        added, evicted = buffer.add((0, 2), 0.5)
        assert not added and evicted is None

    def test_better_offer_evicts_worst(self):
        buffer = StreamTopkBuffer(1)
        buffer.add((0, 1), 0.5)
        added, evicted = buffer.add((0, 2), 0.9)
        assert added and evicted == ((0, 1), 0.5)

    def test_duplicate_pair_rejected(self):
        buffer = StreamTopkBuffer(2)
        buffer.add((0, 1), 0.5)
        assert buffer.add((0, 1), 0.5) == (False, None)

    def test_remove_record_returns_dead_pairs(self):
        buffer = StreamTopkBuffer(3)
        buffer.add((0, 1), 0.5)
        buffer.add((0, 2), 0.7)
        buffer.add((1, 2), 0.3)
        dead = buffer.remove_record(0)
        assert {(pair, round(v, 9)) for pair, v in dead} == {
            ((0, 1), 0.5), ((0, 2), 0.7)
        }
        assert buffer.items() == [((1, 2), 0.3)]

    def test_rebuild_replaces_contents(self):
        buffer = StreamTopkBuffer(2)
        buffer.add((0, 1), 0.5)
        buffer.rebuild([((2, 3), 0.8), ((2, 4), 0.6)])
        assert buffer.items() == [((2, 3), 0.8), ((2, 4), 0.6)]
        assert buffer.s_k == pytest.approx(0.6)

    def test_items_sorted_best_first_then_pair(self):
        buffer = StreamTopkBuffer(3)
        buffer.add((1, 2), 0.5)
        buffer.add((0, 3), 0.5)
        buffer.add((0, 1), 0.9)
        assert buffer.items() == [
            ((0, 1), 0.9), ((0, 3), 0.5), ((1, 2), 0.5)
        ]


class TestStreamEvents:
    def test_parse_insert_forms(self):
        assert parse_event("+ 1 2 3") == StreamEvent.insert([1, 2, 3])
        assert parse_event("1 2 3") == StreamEvent.insert([1, 2, 3])
        assert parse_event("+") == StreamEvent.insert([])

    def test_parse_expire_and_advance(self):
        assert parse_event("-") == StreamEvent.expire(1)
        assert parse_event("- 3") == StreamEvent.expire(3)
        assert parse_event("> 1.5") == StreamEvent.advance(1.5)

    def test_parse_skips_blanks_and_comments(self):
        assert parse_event("") is None
        assert parse_event("  # note") is None

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            parse_event("walrus")
        with pytest.raises(ValueError):
            parse_event("- 1 2")
        with pytest.raises(ValueError):
            parse_event(">")

    def test_read_events_reports_line_numbers(self):
        with pytest.raises(ValueError, match="line 2"):
            list(read_events(["+ 1", "> a b"]))

    def test_format_parse_roundtrip(self):
        events = [
            StreamEvent.insert([3, 1, 4]),
            StreamEvent.insert([]),
            StreamEvent.expire(2),
            StreamEvent.advance(0.5),
        ]
        assert [parse_event(format_event(e)) for e in events] == events

    def test_event_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        events = [StreamEvent.insert([1, 2]), StreamEvent.advance(2.0)]
        save_event_file(path, events)
        assert load_event_file(path) == events

    def test_lists_roundtrip(self):
        events = [
            StreamEvent.insert([1, 2]),
            StreamEvent.expire(2),
            StreamEvent.advance(1.5),
        ]
        payload = events_to_lists(events)
        assert payload == [["+", [1, 2]], ["-", 2], [">", 1.5]]
        assert events_from_lists(payload) == events

    def test_lists_reject_malformed(self):
        with pytest.raises(ValueError):
            events_from_lists([["+", 3]])
        with pytest.raises(ValueError):
            events_from_lists([["-", True]])
        with pytest.raises(ValueError):
            events_from_lists([["?", 1]])
