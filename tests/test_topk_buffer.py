"""Unit tests for repro.core.results.TopKBuffer."""

import random

import pytest

from repro.core.results import TopKBuffer


class TestBasics:
    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            TopKBuffer(0)

    def test_s_k_floor_while_not_full(self):
        buffer = TopKBuffer(3)
        assert buffer.s_k == 0.0
        buffer.add((0, 1), 0.9)
        assert buffer.s_k == 0.0
        assert not buffer.full

    def test_s_k_when_full(self):
        buffer = TopKBuffer(2)
        buffer.add((0, 1), 0.9)
        buffer.add((0, 2), 0.4)
        assert buffer.full
        assert buffer.s_k == pytest.approx(0.4)

    def test_membership(self):
        buffer = TopKBuffer(2)
        buffer.add((0, 1), 0.9)
        assert (0, 1) in buffer
        assert (0, 2) not in buffer
        assert buffer.similarity_of((0, 1)) == pytest.approx(0.9)

    def test_len(self):
        buffer = TopKBuffer(5)
        buffer.add((0, 1), 0.5)
        buffer.add((0, 2), 0.6)
        assert len(buffer) == 2


class TestAddSemantics:
    def test_duplicate_pair_rejected(self):
        buffer = TopKBuffer(3)
        assert buffer.add((0, 1), 0.9)
        assert not buffer.add((0, 1), 0.9)
        assert len(buffer) == 1

    def test_eviction_of_minimum(self):
        buffer = TopKBuffer(2)
        buffer.add((0, 1), 0.3)
        buffer.add((0, 2), 0.5)
        assert buffer.add((0, 3), 0.7)
        assert (0, 1) not in buffer
        assert buffer.s_k == pytest.approx(0.5)

    def test_tie_with_minimum_rejected(self):
        buffer = TopKBuffer(1)
        buffer.add((0, 1), 0.5)
        assert not buffer.add((0, 2), 0.5)
        assert (0, 1) in buffer

    def test_below_minimum_rejected(self):
        buffer = TopKBuffer(1)
        buffer.add((0, 1), 0.5)
        assert not buffer.add((0, 2), 0.3)

    def test_s_k_monotone_under_random_adds(self):
        rng = random.Random(5)
        buffer = TopKBuffer(10)
        previous = buffer.s_k
        for i in range(500):
            buffer.add((0, i + 1), rng.random())
            assert buffer.s_k >= previous
            previous = buffer.s_k

    def test_items_sorted_descending(self):
        buffer = TopKBuffer(3)
        buffer.add((0, 1), 0.2)
        buffer.add((0, 2), 0.9)
        buffer.add((0, 3), 0.5)
        values = [value for __, value in buffer.items()]
        assert values == sorted(values, reverse=True)


class TestEmission:
    def test_pop_emittable_respects_bound(self):
        buffer = TopKBuffer(3)
        buffer.add((0, 1), 0.9)
        buffer.add((0, 2), 0.5)
        emitted = buffer.pop_emittable(0.7)
        assert [pair for pair, __ in emitted] == [(0, 1)]

    def test_emitted_once(self):
        buffer = TopKBuffer(3)
        buffer.add((0, 1), 0.9)
        assert buffer.pop_emittable(0.5)
        assert buffer.pop_emittable(0.0) == []
        # drain() also skips already-emitted pairs
        assert list(buffer.drain()) == []

    def test_emission_descending(self):
        buffer = TopKBuffer(5)
        values = [0.1, 0.9, 0.5, 0.7, 0.3]
        for i, value in enumerate(values):
            buffer.add((0, i + 1), value)
        emitted = [value for __, value in buffer.pop_emittable(0.0)]
        assert emitted == sorted(values, reverse=True)

    def test_evicted_pairs_not_emitted(self):
        buffer = TopKBuffer(1)
        buffer.add((0, 1), 0.5)
        buffer.add((0, 2), 0.8)  # evicts (0, 1)
        emitted = buffer.pop_emittable(0.0)
        assert [pair for pair, __ in emitted] == [(0, 2)]

    def test_drain_returns_rest(self):
        buffer = TopKBuffer(3)
        buffer.add((0, 1), 0.9)
        buffer.add((0, 2), 0.2)
        buffer.pop_emittable(0.5)
        remaining = list(buffer.drain())
        assert [pair for pair, __ in remaining] == [(0, 2)]
