"""Unit tests for repro.similarity.functions.

Each bound is checked two ways: against the closed forms printed in the
paper (Sections II, III, VI) and against brute-force maximisation over all
partner configurations.
"""

import math

import pytest

from repro.similarity import (
    Cosine,
    Dice,
    Jaccard,
    Overlap,
    similarity_by_name,
)

ALL = [Jaccard(), Cosine(), Dice(), Overlap()]
NORMALIZED = [Jaccard(), Cosine(), Dice()]


class TestExactValues:
    def test_jaccard_known(self):
        assert Jaccard().similarity((1, 2, 3), (2, 3, 4)) == pytest.approx(2 / 4)

    def test_cosine_known(self):
        assert Cosine().similarity((1, 2, 3), (2, 3, 4)) == pytest.approx(2 / 3)

    def test_dice_known(self):
        assert Dice().similarity((1, 2, 3), (2, 3, 4)) == pytest.approx(4 / 6)

    def test_overlap_known(self):
        assert Overlap().similarity((1, 2, 3), (2, 3, 4)) == pytest.approx(2.0)

    @pytest.mark.parametrize("sim", ALL, ids=lambda s: s.name)
    def test_identity(self, sim):
        x = (1, 5, 9)
        expected = 1.0 if sim.name != "overlap" else 3.0
        assert sim.similarity(x, x) == pytest.approx(expected)

    @pytest.mark.parametrize("sim", ALL, ids=lambda s: s.name)
    def test_symmetry(self, sim):
        x, y = (1, 2, 5), (2, 3, 4, 5)
        assert sim.similarity(x, y) == pytest.approx(sim.similarity(y, x))

    @pytest.mark.parametrize("sim", NORMALIZED, ids=lambda s: s.name)
    def test_range_zero_one(self, sim):
        assert 0.0 <= sim.similarity((1, 2), (2, 3, 4)) <= 1.0
        assert sim.similarity((1,), (2,)) == 0.0


class TestVerify:
    @pytest.mark.parametrize("sim", ALL, ids=lambda s: s.name)
    def test_exact_at_or_above_threshold(self, sim):
        x, y = (1, 2, 3, 4), (2, 3, 4, 5)
        exact = sim.similarity(x, y)
        assert sim.verify(x, y, threshold=exact) == pytest.approx(exact)

    def test_below_threshold_reports_failure(self):
        value = Jaccard().verify((1, 2, 3, 4, 5), (1, 9, 10, 11, 12), 0.9)
        assert value < 0.9


class TestRequiredOverlap:
    """required_overlap must be the exact minimal integer (Eq. 1)."""

    @pytest.mark.parametrize("sim", ALL, ids=lambda s: s.name)
    @pytest.mark.parametrize("threshold", [0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 2.0])
    def test_minimality_brute_force(self, sim, threshold):
        for size_x in (1, 3, 7, 12):
            for size_y in (1, 4, 9):
                alpha = sim.required_overlap(threshold, size_x, size_y)
                limit = min(size_x, size_y)
                brute = next(
                    (
                        o
                        for o in range(limit + 1)
                        if sim.from_overlap(o, size_x, size_y) >= threshold
                    ),
                    limit + 1,
                )
                assert alpha == brute

    def test_jaccard_closed_form(self):
        # alpha = ceil(t/(1+t) (|x|+|y|))
        sim = Jaccard()
        assert sim.required_overlap(0.8, 10, 10) == math.ceil(0.8 / 1.8 * 20)

    def test_zero_threshold(self):
        for sim in ALL:
            assert sim.required_overlap(0.0, 5, 5) == 0


class TestPrefixLengths:
    def test_jaccard_probing_formula(self):
        # |x| - ceil(t |x|) + 1 (Section II-B)
        sim = Jaccard()
        for size in (1, 5, 10, 17):
            for t in (0.5, 0.8, 0.95, 1.0):
                expected = size - math.ceil(t * size) + 1
                assert sim.probing_prefix_length(size, t) == expected

    def test_jaccard_indexing_formula(self):
        # |x| - ceil(2t/(1+t) |x|) + 1 (Lemma 2)
        sim = Jaccard()
        for size in (5, 10, 17):
            for t in (0.5, 0.8, 0.95):
                expected = size - math.ceil(2 * t / (1 + t) * size) + 1
                assert sim.indexing_prefix_length(size, t) == expected

    def test_cosine_probing_formula(self):
        # |x| - ceil(t^2 |x|) + 1 (Section VI table)
        sim = Cosine()
        for size in (5, 10, 20):
            for t in (0.5, 0.8, 0.95):
                expected = size - math.ceil(t * t * size) + 1
                assert sim.probing_prefix_length(size, t) == expected

    def test_overlap_probing_formula(self):
        # |x| - t + 1 for integer t (Section VI table)
        sim = Overlap()
        assert sim.probing_prefix_length(10, 4) == 7

    def test_indexing_never_longer_than_probing(self):
        for sim in ALL:
            for size in (1, 4, 9, 16):
                for t in (0.2, 0.5, 0.8, 1.0):
                    assert sim.indexing_prefix_length(size, t) <= (
                        sim.probing_prefix_length(size, t)
                    )

    def test_threshold_zero_full_prefix(self):
        for sim in ALL:
            assert sim.probing_prefix_length(7, 0.0) == 7

    def test_prefix_clamped_nonnegative(self):
        assert Overlap().probing_prefix_length(3, 10) == 0


class TestProbingUpperBound:
    def test_jaccard_formula(self):
        # 1 - (p-1)/|x| (Algorithm 5)
        sim = Jaccard()
        for size in (4, 9, 15):
            for p in range(1, size + 1):
                assert sim.probing_upper_bound(size, p) == pytest.approx(
                    1 - (p - 1) / size
                )

    def test_cosine_formula(self):
        # sqrt(1 - (p-1)/|x|)
        sim = Cosine()
        for size in (4, 9):
            for p in range(1, size + 1):
                assert sim.probing_upper_bound(size, p) == pytest.approx(
                    math.sqrt((size - p + 1) / size)
                )

    def test_dice_formula(self):
        # 2(|x|-p+1) / (2|x|-p+1)
        sim = Dice()
        for size in (4, 9):
            for p in range(1, size + 1):
                assert sim.probing_upper_bound(size, p) == pytest.approx(
                    2 * (size - p + 1) / (2 * size - p + 1)
                )

    def test_overlap_formula(self):
        assert Overlap().probing_upper_bound(10, 4) == pytest.approx(7.0)

    def test_monotone_decreasing_in_p(self):
        for sim in ALL:
            bounds = [sim.probing_upper_bound(10, p) for p in range(1, 11)]
            assert bounds == sorted(bounds, reverse=True)

    def test_initial_bound_is_max(self):
        for sim in NORMALIZED:
            assert sim.probing_upper_bound(6, 1) == pytest.approx(1.0)
        assert Overlap().probing_upper_bound(6, 1) == pytest.approx(6.0)


class TestIndexingUpperBound:
    def test_jaccard_formula(self):
        # (|x|-p+1)/(|x|+p-1) (Lemma 4)
        sim = Jaccard()
        for size in (4, 9, 15):
            for p in range(1, size + 1):
                assert sim.indexing_upper_bound(size, p) == pytest.approx(
                    (size - p + 1) / (size + p - 1)
                )

    def test_cosine_and_dice_formula(self):
        # (|x|-p+1)/|x| for both (Section VI tables)
        for sim in (Cosine(), Dice()):
            for size in (4, 9):
                for p in range(1, size + 1):
                    assert sim.indexing_upper_bound(size, p) == pytest.approx(
                        (size - p + 1) / size
                    )

    def test_never_exceeds_probing_bound(self):
        for sim in ALL:
            for size in (3, 8, 13):
                for p in range(1, size + 1):
                    assert sim.indexing_upper_bound(size, p) <= (
                        sim.probing_upper_bound(size, p) + 1e-12
                    )

    def test_monotone_decreasing_in_p(self):
        for sim in ALL:
            bounds = [sim.indexing_upper_bound(9, p) for p in range(1, 10)]
            assert bounds == sorted(bounds, reverse=True)


class TestAccessingUpperBound:
    def test_jaccard_formula(self):
        # s_px s_py / (s_px + s_py - s_px s_py) (Algorithm 10)
        sim = Jaccard()
        assert sim.accessing_upper_bound(0.8, 0.5) == pytest.approx(
            0.4 / (1.3 - 0.4)
        )

    def test_cosine_formula(self):
        assert Cosine().accessing_upper_bound(0.8, 0.5) == pytest.approx(0.4)

    def test_overlap_formula(self):
        assert Overlap().accessing_upper_bound(5.0, 3.0) == pytest.approx(3.0)

    def test_monotone_in_both_arguments(self):
        for sim in ALL:
            low = sim.accessing_upper_bound(0.4, 0.5)
            assert sim.accessing_upper_bound(0.6, 0.5) >= low
            assert sim.accessing_upper_bound(0.4, 0.7) >= low

    def test_at_most_min_of_bounds_for_normalized(self):
        for sim in NORMALIZED:
            for bx in (0.2, 0.5, 0.9, 1.0):
                for by in (0.1, 0.6, 1.0):
                    assert sim.accessing_upper_bound(bx, by) <= min(bx, by) + 1e-12

    def test_accessing_cutoff_is_conservative(self):
        # Every bound_y failing the accessing test must be below the cutoff.
        for sim in ALL:
            for bx in (0.3, 0.6, 0.9):
                for s_k in (0.2, 0.5, 0.8):
                    cutoff = sim.accessing_cutoff(bx, s_k)
                    for by in (0.05, 0.25, 0.45, 0.65, 0.85):
                        if sim.accessing_upper_bound(bx, by) <= s_k:
                            assert by <= cutoff


class TestSizeFiltering:
    @pytest.mark.parametrize("sim", ALL, ids=lambda s: s.name)
    def test_matches_brute_force(self, sim):
        for t in (0.3, 0.6, 0.9, 1.5):
            for size_x in (1, 4, 9):
                for size_y in (1, 2, 5, 12, 30):
                    best = sim.from_overlap(min(size_x, size_y), size_x, size_y)
                    assert sim.size_compatible(t, size_x, size_y) == (best >= t)

    def test_jaccard_window(self):
        sim = Jaccard()
        # |y| in [t|x|, |x|/t] for t=0.5, |x|=10 => [5, 20]
        assert sim.size_compatible(0.5, 10, 5)
        assert sim.size_compatible(0.5, 10, 20)
        assert not sim.size_compatible(0.5, 10, 4)
        assert not sim.size_compatible(0.5, 10, 21)

    def test_overlap_one_sided(self):
        sim = Overlap()
        assert sim.size_compatible(3, 10, 3)
        assert not sim.size_compatible(3, 10, 2)
        assert sim.size_compatible(3, 10, 1000)

    def test_numeric_window_brackets_compatibility(self):
        sim = Jaccard()
        low = sim.size_lower_bound(0.5, 10)
        high = sim.size_upper_bound(0.5, 10)
        assert low <= 5.01 and high >= 19.99

    def test_overlap_upper_bound_infinite(self):
        assert Overlap().size_upper_bound(3, 10) == float("inf")


class TestRegistry:
    def test_lookup_by_name(self):
        for name, cls in [
            ("jaccard", Jaccard),
            ("cosine", Cosine),
            ("dice", Dice),
            ("overlap", Overlap),
        ]:
            assert isinstance(similarity_by_name(name), cls)

    def test_case_insensitive(self):
        assert isinstance(similarity_by_name("Jaccard"), Jaccard)

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown similarity"):
            similarity_by_name("euclid")

    def test_repr(self):
        assert repr(Jaccard()) == "Jaccard()"
