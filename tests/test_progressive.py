"""Tests for progressive emission (Section VII-F / Figure 5(b-c))."""

from repro import TopkOptions, TopkStats, topk_join
from repro.data import random_integer_collection, synthetic_collection


def run_with_trace(collection, k, **option_overrides):
    stats = TopkStats()
    options = TopkOptions(**option_overrides)
    results = topk_join(collection, k, options=options, stats=stats)
    return results, stats


class TestEmissionTrace:
    def test_trace_recorded_per_result(self, rng):
        coll = random_integer_collection(60, 20, 8, rng=rng)
        results, stats = run_with_trace(coll, 20)
        positive = [r for r in results if r.similarity > 0]
        assert len(stats.emits) == len(positive)
        assert [e.index for e in stats.emits] == list(
            range(1, len(positive) + 1)
        )

    def test_similarities_non_increasing(self, rng):
        coll = random_integer_collection(60, 20, 8, rng=rng)
        __, stats = run_with_trace(coll, 20)
        values = [e.similarity for e in stats.emits]
        assert values == sorted(values, reverse=True)

    def test_upper_bound_non_increasing(self, rng):
        coll = random_integer_collection(60, 20, 8, rng=rng)
        __, stats = run_with_trace(coll, 20)
        bounds = [e.upper_bound for e in stats.emits]
        assert bounds == sorted(bounds, reverse=True)

    def test_s_k_non_decreasing(self, rng):
        coll = random_integer_collection(60, 20, 8, rng=rng)
        __, stats = run_with_trace(coll, 20)
        s_k_values = [e.s_k for e in stats.emits]
        assert s_k_values == sorted(s_k_values)

    def test_elapsed_non_decreasing(self, rng):
        coll = random_integer_collection(60, 20, 8, rng=rng)
        __, stats = run_with_trace(coll, 20)
        elapsed = [e.elapsed for e in stats.emits]
        assert elapsed == sorted(elapsed)

    def test_emission_dominates_remaining_bound(self, rng):
        # The defining guarantee: at emission time, the result's similarity
        # is at least the upper bound of everything unseen.
        coll = random_integer_collection(60, 20, 8, rng=rng)
        __, stats = run_with_trace(coll, 20)
        for event in stats.emits:
            assert event.similarity >= event.upper_bound - 1e-12


class TestInteractiveScenario:
    def test_early_results_before_exhaustion(self):
        # On data with clear near-duplicates, the first result must be
        # emitted while plenty of events remain (the paper's interactive
        # use case: stop any time).
        coll = synthetic_collection(
            150, avg_size=12, universe=2000, seed=10, duplicate_fraction=0.4
        )
        __, stats = run_with_trace(coll, 50)
        assert stats.emits, "no progressive emissions recorded"
        first = stats.emits[0]
        last = stats.emits[-1]
        assert first.elapsed <= last.elapsed
        # The first emission happens while the remaining bound is still
        # meaningfully high (events left to process).
        assert first.upper_bound > 0.0

    def test_trace_consistent_without_compression(self, rng):
        coll = random_integer_collection(60, 20, 8, rng=rng)
        __, stats = run_with_trace(coll, 20, compress_events=False)
        values = [e.similarity for e in stats.emits]
        assert values == sorted(values, reverse=True)
