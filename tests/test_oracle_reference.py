"""The brute-force oracles and tie-aware comparators of repro.oracle."""

from __future__ import annotations

import pytest

from conftest import make_collection, rounded_multiset
from repro.core.naive_topk import naive_topk as legacy_naive_topk
from repro.core.rs_join import TaggedCollection, naive_topk_rs
from repro.data.synthetic import random_integer_collection
from repro.oracle import (
    assert_topk_equivalent,
    assert_valid_topk,
    naive_threshold,
    naive_topk,
    topk_multiset,
)
from repro.result import JoinResult
from repro.similarity.functions import similarity_by_name


def test_naive_topk_hand_computed():
    coll = make_collection([0, 1, 2], [0, 1, 2], [0, 1], [5, 6])
    results = naive_topk(coll, 2)
    assert [round(r.similarity, 9) for r in results] == [1.0, round(2 / 3, 9)]
    # The identical records are the unique top pair.
    top = results[0]
    assert coll[top.x].tokens == coll[top.y].tokens


def test_naive_topk_truncates_to_pair_space():
    coll = make_collection([0], [1])
    assert len(naive_topk(coll, 10)) == 1  # one pair exists, k=10 requested
    assert naive_topk(coll, 10)[0].similarity == 0.0


def test_naive_topk_rejects_bad_k():
    coll = make_collection([0], [1])
    with pytest.raises(ValueError):
        naive_topk(coll, 0)


def test_naive_topk_sides_restricts_to_cross_pairs():
    # Two identical records on the same side must not be reported.
    coll = make_collection([0, 1], [0, 1], [0, 2])
    sides = [0, 0, 1]
    results = naive_topk(coll, 10, sides=sides)
    assert len(results) == 2
    for r in results:
        assert sides[r.x] != sides[r.y]


def test_naive_threshold_matches_manual_filter():
    coll = random_integer_collection(25, 20, 6, seed=3)
    sim = similarity_by_name("jaccard")
    expected = [
        (a, b)
        for a in range(len(coll))
        for b in range(a + 1, len(coll))
        if sim.similarity(coll[a].tokens, coll[b].tokens) >= 0.5
    ]
    results = naive_threshold(coll, 0.5)
    assert {(r.x, r.y) for r in results} == set(expected)
    values = [r.similarity for r in results]
    assert values == sorted(values, reverse=True)


def test_legacy_oracles_delegate_to_reference():
    coll = random_integer_collection(30, 15, 6, seed=9)
    assert legacy_naive_topk(coll, 7) == naive_topk(coll, 7)

    tagged = TaggedCollection.from_integer_sets(
        [[0, 1, 2], [3, 4]], [[0, 1], [3, 4, 5]]
    )
    assert naive_topk_rs(tagged, 3) == naive_topk(
        tagged.collection, 3, sides=tagged.sides
    )


def test_topk_multiset_rounds_and_sorts():
    results = [JoinResult(0, 1, 0.1 + 0.2), JoinResult(0, 2, 0.5)]
    assert topk_multiset(results) == [0.5, round(0.1 + 0.2, 9)]


def test_equivalence_accepts_alternate_boundary_tiebreak():
    # Ranks 1-2 fixed, rank 3 tied between (0,3) and (1,2): either is valid.
    expected = [
        JoinResult(0, 1, 0.9),
        JoinResult(0, 2, 0.7),
        JoinResult(0, 3, 0.5),
    ]
    alternate = expected[:2] + [JoinResult(1, 2, 0.5)]
    assert_topk_equivalent(alternate, expected)


def test_equivalence_rejects_wrong_multiset():
    expected = [JoinResult(0, 1, 0.9), JoinResult(0, 2, 0.7)]
    wrong = [JoinResult(0, 1, 0.9), JoinResult(0, 2, 0.6)]
    with pytest.raises(AssertionError, match="multiset"):
        assert_topk_equivalent(wrong, expected)


def test_equivalence_rejects_missing_above_boundary_pair():
    expected = [JoinResult(0, 1, 0.9), JoinResult(0, 2, 0.5)]
    wrong = [JoinResult(2, 3, 0.9), JoinResult(0, 2, 0.5)]
    with pytest.raises(AssertionError, match="boundary"):
        assert_topk_equivalent(wrong, expected)


def test_equivalence_rejects_count_mismatch():
    expected = [JoinResult(0, 1, 0.9)]
    with pytest.raises(AssertionError, match="count"):
        assert_topk_equivalent([], expected)


def test_valid_topk_rejects_fabricated_similarity():
    coll = make_collection([0, 1], [0, 1], [2, 3])
    forged = [JoinResult(0, 1, 0.75)]  # records are identical: true value 1.0
    with pytest.raises(AssertionError, match="score"):
        assert_valid_topk(coll, 1, forged)


def test_valid_topk_rejects_duplicate_and_noncanonical_pairs():
    coll = make_collection([0, 1], [0, 1], [0, 2])
    good = naive_topk(coll, 2)
    assert_valid_topk(coll, 2, good)
    with pytest.raises(AssertionError, match="twice"):
        assert_valid_topk(coll, 2, [good[0], good[0]])
    flipped = JoinResult(good[0].y, good[0].x, good[0].similarity)
    with pytest.raises(AssertionError, match="canonically"):
        assert_valid_topk(coll, 2, [flipped, good[1]])


@pytest.mark.parametrize("name", ["jaccard", "cosine", "dice", "overlap"])
def test_oracle_self_consistency_across_functions(name):
    coll = random_integer_collection(20, 12, 5, seed=17)
    sim = similarity_by_name(name)
    results = naive_topk(coll, 6, similarity=sim)
    assert_valid_topk(coll, 6, results, similarity=sim)
    assert rounded_multiset(results) == topk_multiset(results)
