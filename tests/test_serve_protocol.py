"""Protocol parsing, fault injection, and the serve fuzz campaign.

The daemon's survival contract: any byte sequence a client sends yields
a structured error reply or a dropped connection — never a daemon death,
never a corrupted engine.  The acceptance bar at the bottom runs >= 200
fuzzed adversarial sessions against one hardened daemon and requires
zero crashes.
"""

from __future__ import annotations

import json

import pytest

from repro.oracle.differential import sockets_usable
from repro.oracle.fuzz import (
    SERVE_GENERATORS,
    ServeCase,
    ServeFuzzReport,
    fuzz_serve_run,
    load_serve_case,
    replay_corpus,
    save_serve_case,
    shrink_serve_case,
)
from repro.serve import (
    ERROR_CODES,
    VERBS,
    InProcessDaemon,
    ProtocolError,
    ServeClient,
    ServeOptions,
    parse_request,
)
from repro.stream.engine import StreamingTopkEngine

needs_sockets = pytest.mark.skipif(
    not sockets_usable(), reason="cannot bind local sockets"
)


def make_daemon(**options: object) -> InProcessDaemon:
    from repro.core import TopkOptions

    return InProcessDaemon(
        lambda: StreamingTopkEngine(
            2, options=TopkOptions(window_size=8), mode="incremental"
        ),
        ServeOptions(**options),
    )


class TestParseRequest:
    def parse(self, payload: object) -> object:
        return parse_request(json.dumps(payload).encode("utf-8"))

    def test_valid_verbs_round_trip(self):
        request = self.parse({"verb": "insert", "id": 1, "tokens": [3, 1]})
        assert request.verb == "insert"
        assert request.tokens == (3, 1)
        assert self.parse({"verb": "expire", "id": 2}).amount == 1.0
        advance = self.parse({"verb": "advance", "id": 3, "amount": 2.5})
        assert advance.amount == 2.5

    def error(self, payload: object) -> ProtocolError:
        with pytest.raises(ProtocolError) as caught:
            self.parse(payload)
        assert caught.value.code in ERROR_CODES
        return caught.value

    def test_rejects_non_utf8(self):
        with pytest.raises(ProtocolError) as caught:
            parse_request(b"\xff\xfe{}")
        assert caught.value.code == "parse-error"

    def test_rejects_invalid_json(self):
        with pytest.raises(ProtocolError) as caught:
            parse_request(b"{nope")
        assert caught.value.code == "parse-error"

    def test_rejects_non_object_frames(self):
        assert self.error([1, 2, 3]).code == "bad-request"
        assert self.error("hello").code == "bad-request"

    def test_rejects_unknown_verbs(self):
        error = self.error({"verb": "destroy", "id": 1})
        assert error.code == "unknown-verb"
        assert error.request_id == 1

    def test_id_is_optional_but_must_be_int_or_string(self):
        assert self.parse({"verb": "ping"}).id is None
        assert self.parse({"verb": "ping", "id": "abc"}).id == "abc"
        assert self.error({"verb": "ping", "id": True}).code == "bad-request"
        assert self.error({"verb": "ping", "id": 1.5}).code == "bad-request"

    def test_rejects_bad_insert_tokens(self):
        for tokens in (None, "abc", [1, "x"], [1, True], [-1]):
            error = self.error(
                {"verb": "insert", "id": 1, "tokens": tokens}
            )
            assert error.code == "bad-request"

    def test_rejects_bad_expire_and_advance(self):
        assert (
            self.error({"verb": "expire", "id": 1, "count": 0}).code
            == "bad-request"
        )
        for amount in (None, "x", float("nan"), float("inf"), -1.0):
            error = self.error(
                {"verb": "advance", "id": 1, "amount": amount}
            )
            assert error.code == "bad-request"

    def test_verb_table_is_closed(self):
        assert set(VERBS) == {
            "insert", "expire", "advance", "query", "subscribe",
            "unsubscribe", "stats", "metrics", "ping", "shutdown",
        }


@needs_sockets
class TestFaultInjection:
    """Scripted broken clients; the daemon must answer or hang up."""

    def test_invalid_json_gets_structured_error(self):
        with make_daemon() as (host, port):
            with ServeClient(host, port) as client:
                client.send_raw(b"this is not json\n")
                frame = client.read_frame()
                assert frame["ok"] is False
                assert frame["error"]["code"] == "parse-error"
                # The connection survives a malformed frame.
                assert client.request("ping")["pong"] is True

    def test_unknown_verb_keeps_connection(self):
        with make_daemon() as (host, port):
            with ServeClient(host, port) as client:
                client.send_raw(b'{"verb":"launch","id":4}\n')
                frame = client.read_frame()
                assert frame["error"]["code"] == "unknown-verb"
                assert frame["id"] == 4
                assert client.request("ping")["pong"] is True

    def test_oversized_frame_errors_then_disconnects(self):
        with make_daemon(max_frame_bytes=256) as (host, port):
            with ServeClient(host, port) as client:
                client.send_raw(b"x" * 600 + b"\n")
                frame = client.read_frame()
                assert frame["error"]["code"] == "frame-too-large"
                with pytest.raises(ConnectionError):
                    client.read_frame()

    def test_oversized_frame_without_newline(self):
        with make_daemon(max_frame_bytes=256) as (host, port):
            with ServeClient(host, port) as client:
                client.send_raw(b"y" * 600)
                frame = client.read_frame()
                assert frame["error"]["code"] == "frame-too-large"

    def test_mid_request_disconnect_is_harmless(self):
        with make_daemon() as (host, port):
            client = ServeClient(host, port)
            client.send_raw(b'{"verb":"insert","id":1,"tok')
            client.close()  # truncated frame, no newline, hard close
            with ServeClient(host, port) as probe:
                assert probe.request("ping")["pong"] is True

    def test_bad_request_counts_in_stats(self):
        with make_daemon() as (host, port):
            with ServeClient(host, port) as client:
                client.send_raw(b"junk\n")
                client.read_frame()
                client.send_raw(b'{"verb":"warp","id":1}\n')
                client.read_frame()
                stats = client.request("stats")["stats"]
                assert stats["malformed"] == 2
                assert stats["errors"] >= 2

    def test_remote_shutdown_can_be_forbidden(self):
        with make_daemon(allow_remote_shutdown=False) as (host, port):
            with ServeClient(host, port) as client:
                reply = client.request("shutdown")
                assert reply["ok"] is False
                assert reply["error"]["code"] == "forbidden"
                assert client.request("ping")["pong"] is True


class TestServeCaseMachinery:
    def test_case_payload_round_trip(self):
        case = ServeCase.make([b"\xff{broken\n", b"tail"], abort=True)
        clone = ServeCase.from_payload(case.chunks_payload(), case.abort)
        assert clone == case

    def test_generators_are_deterministic(self):
        import random

        for name, generator in sorted(SERVE_GENERATORS.items()):
            first = generator(random.Random(42))
            second = generator(random.Random(42))
            assert first == second, name
            assert first.chunks, name

    def test_shrinker_drops_irrelevant_chunks(self):
        case = ServeCase.make(
            [b"aaaa", b"MAGIC", b"bbbb", b"cccc"], abort=True
        )

        def failing(candidate: ServeCase) -> list:
            joined = b"".join(candidate.chunks)
            return ["boom"] if b"MAGIC" in joined else []

        shrunk = shrink_serve_case(case, failing)
        assert b"MAGIC" in b"".join(shrunk.chunks)
        assert len(shrunk.chunks) == 1
        assert shrunk.abort is False

    def test_shrinker_returns_passing_case_unchanged(self):
        case = ServeCase.make([b"ok"], abort=False)
        assert shrink_serve_case(case, lambda c: []) == case

    def test_save_load_roundtrip(self, tmp_path):
        case = ServeCase.make([b"\x00\xffjunk\n"], abort=True)
        path = save_serve_case(
            str(tmp_path), case, ["it died"], seed=3,
            generator="serve-junk-bytes", description="roundtrip",
        )
        assert path.endswith(".json")
        loaded, document = load_serve_case(path)
        assert loaded == case
        assert document["failures"] == ["it died"]
        assert document["generator"] == "serve-junk-bytes"

    @needs_sockets
    def test_replay_corpus_covers_serve_cases(self, tmp_path):
        case = ServeCase.make([b'{"verb":"ping","id":1}\n'])
        save_serve_case(str(tmp_path), case, [])
        assert replay_corpus(str(tmp_path)) == []


@needs_sockets
class TestFuzzServeRun:
    def test_small_campaign_is_clean(self):
        report = fuzz_serve_run(seed=5, iterations=20)
        assert isinstance(report, ServeFuzzReport)
        assert report.ok, report.failures
        assert report.iterations == 20

    def test_on_progress_called_each_iteration(self):
        seen = []
        fuzz_serve_run(
            seed=5, iterations=6,
            on_progress=lambda done, found: seen.append((done, found)),
        )
        assert seen == [(i, 0) for i in range(1, 7)]

    def test_budget_stops_early(self):
        report = fuzz_serve_run(seed=5, iterations=10_000, budget=0.0)
        assert report.iterations == 0

    def test_acceptance_bar_200_adversarial_sessions(self):
        """The issue's acceptance criterion: >= 200 malformed/adversarial
        sessions against a hardened daemon with zero crashes."""
        report = fuzz_serve_run(seed=0, iterations=200)
        assert report.iterations == 200
        assert report.ok, "\n".join(
            "iteration=%d generator=%s: %s" % (it, gen, "; ".join(msgs))
            for it, gen, __, msgs, ___ in report.failures
        )
