"""The harness catches deliberately injected bound bugs — twice over.

These tests exist to prove the correctness harness is not vacuous: an
off-by-one planted in the paper's bound formulas (the most plausible real
mistake in a reimplementation) must be caught BOTH by a runtime invariant
(localizing the bug to one decision) AND by the differential oracle
(showing the answer is actually wrong), and the fuzzer's shrinker must
reduce such a failure to a small reproducing case.
"""

from __future__ import annotations

import pytest

from repro.core.topk_join import TopkOptions, topk_join
from repro.data.records import RecordCollection
from repro.data.synthetic import random_integer_collection
from repro.oracle import (
    InvariantViolation,
    assert_topk_equivalent,
    naive_topk,
)
from repro.oracle.differential import DifferentialCase
from repro.oracle.faults import OffByOneIndexingBound, OffByOneProbingBound

#: One collection on which both faults are detectable both ways.
_SEED = 0


def _collection() -> RecordCollection:
    return random_integer_collection(30, 25, 8, seed=_SEED)


@pytest.mark.parametrize(
    "fault_cls,expected_invariant",
    [(OffByOneIndexingBound, "ub_i"), (OffByOneProbingBound, "ub_p")],
)
def test_fault_caught_by_runtime_invariant(fault_cls, expected_invariant):
    coll = _collection()
    with pytest.raises(InvariantViolation) as excinfo:
        topk_join(
            coll, 5, similarity=fault_cls(),
            options=TopkOptions(check_invariants=True),
        )
    assert excinfo.value.invariant == expected_invariant


@pytest.mark.parametrize(
    "fault_cls", [OffByOneIndexingBound, OffByOneProbingBound]
)
def test_fault_caught_by_differential_oracle(fault_cls):
    coll = _collection()
    # Checks off: the join runs to completion and produces a wrong answer.
    actual = topk_join(coll, 5, similarity=fault_cls())
    # The faults break only the bounds, not the scoring, so the plain
    # Jaccard oracle is the correct expectation.
    expected = naive_topk(coll, 5)
    with pytest.raises(AssertionError):
        assert_topk_equivalent(actual, expected)


def test_correct_bounds_pass_both_layers():
    """Sanity: the same collection passes with the real Jaccard."""
    coll = _collection()
    actual = topk_join(
        coll, 5, options=TopkOptions(check_invariants=True)
    )
    assert_topk_equivalent(actual, naive_topk(coll, 5))


def test_shrinker_minimizes_fault_repro():
    """shrink_case reduces a 30-record failure to a handful of records."""
    from repro.oracle.fuzz import shrink_case

    coll = _collection()
    records = tuple(record.tokens for record in coll)

    def failing(case: DifferentialCase):
        collection = case.collection()
        try:
            topk_join(
                collection, case.k, similarity=OffByOneIndexingBound(),
                options=TopkOptions(check_invariants=True),
            )
        except InvariantViolation as violation:
            return [str(violation)]
        return []

    case = DifferentialCase(records, 5, "jaccard")
    assert failing(case)
    shrunk = shrink_case(case, failing)
    assert failing(shrunk), "shrunk case must still reproduce"
    assert len(shrunk.records) < len(case.records)
    assert len(shrunk.records) <= 6
    assert sum(len(tokens) for tokens in shrunk.records) <= 20
