"""Unit tests for repro.data.stats and repro.data.io."""

import pytest

from repro.data import (
    RecordCollection,
    dataset_statistics,
    load_collection,
    load_token_file,
    log_binned,
    record_size_histogram,
    save_token_file,
    token_frequency_histogram,
)


@pytest.fixture
def collection():
    return RecordCollection.from_integer_sets([[1, 2], [2, 3], [2, 3, 4]])


class TestDatasetStatistics:
    def test_table1_row(self, collection):
        stats = dataset_statistics("toy", collection)
        assert stats.record_count == 3
        assert stats.average_size == pytest.approx(7 / 3)
        assert stats.universe_size == 5
        assert stats.row()[0] == "toy"


class TestHistograms:
    def test_token_frequency_histogram(self, collection):
        histogram = token_frequency_histogram(collection)
        # token 2 appears in 3 records; token 3 in 2; tokens 1 and 4 in 1.
        assert histogram == {3: 1, 2: 1, 1: 2}

    def test_record_size_histogram(self, collection):
        assert record_size_histogram(collection) == {2: 2, 3: 1}

    def test_log_binned_totals_preserved(self):
        histogram = {1: 5, 2: 3, 10: 2, 100: 1}
        series = log_binned(histogram)
        assert sum(count for __, count in series) == 11

    def test_log_binned_sorted_and_positive(self):
        series = log_binned({1: 1, 5: 1, 50: 1, 500: 1})
        centers = [center for center, __ in series]
        assert centers == sorted(centers)
        assert all(center > 0 for center in centers)

    def test_log_binned_empty(self):
        assert log_binned({}) == []

    def test_log_binned_skips_nonpositive_values(self):
        assert log_binned({0: 7}) == []


class TestTokenFileIO:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "data.txt")
        token_lists = [["a", "b"], ["c"]]
        save_token_file(path, token_lists)
        assert load_token_file(path) == token_lists

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("a b\n\n\nc\n")
        assert load_token_file(str(path)) == [["a", "b"], ["c"]]

    def test_load_collection(self, tmp_path):
        path = str(tmp_path / "data.txt")
        save_token_file(path, [["x", "y"], ["x"]])
        coll = load_collection(path)
        assert len(coll) == 2
        assert coll.universe_size == 2

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "data.txt")
        save_token_file(path, [["a"]])
        assert list(tmp_path.iterdir()) == [tmp_path / "data.txt"]
