"""Unit tests for repro.index.inverted."""

from repro.index import BoundedInvertedIndex, InvertedIndex


class TestInvertedIndex:
    def test_add_and_postings(self):
        index = InvertedIndex()
        index.add(5, rid=1, position=2)
        index.add(5, rid=3, position=1)
        assert index.postings(5) == [(1, 2), (3, 1)]

    def test_missing_token_empty(self):
        assert InvertedIndex().postings(99) == []

    def test_contains(self):
        index = InvertedIndex()
        index.add(1, 0, 1)
        assert 1 in index and 2 not in index

    def test_len_counts_tokens(self):
        index = InvertedIndex()
        index.add(1, 0, 1)
        index.add(1, 1, 1)
        index.add(2, 0, 2)
        assert len(index) == 2

    def test_entry_count(self):
        index = InvertedIndex()
        index.add(1, 0, 1)
        index.add(1, 1, 1)
        index.add(2, 0, 2)
        assert index.entry_count == 3

    def test_tokens_iterator(self):
        index = InvertedIndex()
        index.add(7, 0, 1)
        index.add(9, 0, 2)
        assert sorted(index.tokens()) == [7, 9]


class TestBoundedInvertedIndex:
    def test_postings_carry_bounds(self):
        index = BoundedInvertedIndex()
        index.add(4, rid=0, position=1, bound=0.9)
        assert index.postings(4) == [(0, 1, 0.9)]

    def test_counters(self):
        index = BoundedInvertedIndex()
        for rid in range(5):
            index.add(1, rid, 1, 1.0 - rid / 10)
        assert index.inserted == 5
        assert index.entry_count == 5
        assert index.peak_entries == 5

    def test_truncate_removes_tail(self):
        index = BoundedInvertedIndex()
        for rid in range(5):
            index.add(1, rid, 1, 1.0 - rid / 10)
        removed = index.truncate(1, 2)
        assert removed == 3
        assert [p[0] for p in index.postings(1)] == [0, 1]
        assert index.deleted == 3
        assert index.entry_count == 2

    def test_truncate_beyond_end_noop(self):
        index = BoundedInvertedIndex()
        index.add(1, 0, 1, 1.0)
        assert index.truncate(1, 5) == 0
        assert index.truncate(99, 0) == 0

    def test_peak_survives_truncation(self):
        index = BoundedInvertedIndex()
        for rid in range(4):
            index.add(1, rid, 1, 0.5)
        index.truncate(1, 1)
        index.add(2, 9, 1, 0.4)
        assert index.peak_entries == 4
        assert index.entry_count == 2

    def test_contains_and_len(self):
        index = BoundedInvertedIndex()
        index.add(3, 0, 1, 1.0)
        assert 3 in index and 4 not in index
        assert len(index) == 1
