"""Unit tests for repro.data.synthetic — the paper-workload stand-ins."""

import random

import pytest

from repro.data import (
    ZipfSampler,
    dblp_like,
    qgram_strings,
    random_integer_collection,
    synthetic_collection,
    trec3_like,
    trec_like,
    uniref3_like,
)


class TestZipfSampler:
    def test_samples_in_range(self):
        sampler = ZipfSampler(100)
        rng = random.Random(1)
        for __ in range(500):
            assert 0 <= sampler.sample(rng) < 100

    def test_skew_head_heavier_than_tail(self):
        sampler = ZipfSampler(1000, exponent=1.0)
        rng = random.Random(2)
        draws = [sampler.sample(rng) for __ in range(5000)]
        head = sum(1 for d in draws if d < 10)
        tail = sum(1 for d in draws if d >= 990)
        assert head > 10 * max(tail, 1)

    def test_sample_distinct_unique(self):
        sampler = ZipfSampler(50)
        tokens = sampler.sample_distinct(random.Random(3), 20)
        assert len(tokens) == len(set(tokens)) == 20

    def test_sample_distinct_full_universe(self):
        sampler = ZipfSampler(10)
        tokens = sampler.sample_distinct(random.Random(4), 10)
        assert sorted(tokens) == list(range(10))

    def test_sample_distinct_too_many_raises(self):
        with pytest.raises(ValueError):
            ZipfSampler(5).sample_distinct(random.Random(0), 6)

    def test_empty_universe_raises(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)


class TestSyntheticCollection:
    def test_deterministic_by_seed(self):
        a = synthetic_collection(100, avg_size=10, universe=500, seed=7)
        b = synthetic_collection(100, avg_size=10, universe=500, seed=7)
        assert [tuple(r.tokens) for r in a] == [tuple(r.tokens) for r in b]

    def test_different_seeds_differ(self):
        a = synthetic_collection(100, avg_size=10, universe=500, seed=7)
        b = synthetic_collection(100, avg_size=10, universe=500, seed=8)
        assert [tuple(r.tokens) for r in a] != [tuple(r.tokens) for r in b]

    def test_average_size_near_target(self):
        coll = synthetic_collection(
            400, avg_size=20, universe=5000, seed=1, duplicate_fraction=0.0
        )
        assert 12 <= coll.average_size <= 30

    def test_contains_near_duplicates(self):
        # With a high duplicate fraction some pair must be very similar.
        from repro import naive_topk

        coll = synthetic_collection(
            80, avg_size=10, universe=2000, seed=3, duplicate_fraction=0.5
        )
        best = naive_topk(coll, 1)[0]
        assert best.similarity > 0.5


class TestDatasetMimics:
    def test_dblp_like_short_records(self):
        coll = dblp_like(200, seed=1)
        assert 8 <= coll.average_size <= 25

    def test_trec_like_long_records(self):
        coll = trec_like(60, seed=1)
        assert coll.average_size > 60

    def test_trec3_like_is_qgram_scale(self):
        coll = trec3_like(30, seed=1)
        assert coll.average_size > 100

    def test_uniref3_like_protein_alphabet(self):
        coll = uniref3_like(30, seed=1)
        assert coll.average_size > 100
        # 20-letter alphabet => far fewer distinct 3-grams than text.
        assert coll.universe_size < 21**3 * 2

    def test_qgram_strings_deterministic(self):
        a = qgram_strings(20, avg_length=50, alphabet="ab", seed=5)
        b = qgram_strings(20, avg_length=50, alphabet="ab", seed=5)
        assert a == b

    def test_qgram_strings_alphabet_respected(self):
        for text in qgram_strings(10, avg_length=30, alphabet="xyz", seed=6):
            assert set(text) <= set("xyz")


class TestRandomIntegerCollection:
    def test_seed_reproducible(self):
        a = random_integer_collection(30, universe=20, max_size=5, seed=9)
        b = random_integer_collection(30, universe=20, max_size=5, seed=9)
        assert [tuple(r.tokens) for r in a] == [tuple(r.tokens) for r in b]

    def test_respects_bounds(self):
        coll = random_integer_collection(50, universe=15, max_size=4, seed=2)
        for record in coll:
            assert 1 <= len(record) <= 4
            assert all(0 <= token < 15 for token in record)
