"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plotting import MARKERS, ascii_chart


def plot_area(chart: str) -> str:
    """The chart body only (drops legend/axis footer lines)."""
    return "\n".join(line for line in chart.splitlines() if "|" in line)


class TestAsciiChart:
    def test_single_series_renders_markers(self):
        chart = ascii_chart({"a": [(0, 0), (1, 1), (2, 4)]})
        assert plot_area(chart).count("*") == 3
        assert "legend: * a" in chart

    def test_two_series_distinct_markers(self):
        chart = ascii_chart(
            {"fast": [(1, 1), (2, 2)], "slow": [(1, 3), (2, 6)]}
        )
        assert "*" in chart and "+" in chart
        assert "legend: * fast   + slow" in chart

    def test_axis_labels_show_data_range(self):
        chart = ascii_chart({"s": [(10, 5), (100, 50)]})
        assert "100" in chart
        assert "50" in chart
        assert "5" in chart

    def test_log_scale_annotated(self):
        chart = ascii_chart({"s": [(1, 1), (10, 100)]}, log_x=True, log_y=True)
        assert "log x" in chart and "log y" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart({"flat": [(1, 7), (2, 7), (3, 7)]})
        assert plot_area(chart).count("*") >= 1

    def test_single_point(self):
        chart = ascii_chart({"dot": [(5, 5)]})
        assert plot_area(chart).count("*") == 1

    def test_empty_series(self):
        assert ascii_chart({}) == "(no data)"
        assert ascii_chart({"a": []}) == "(no data)"

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [(1, 1)]}, width=4, height=2)

    def test_dimensions_respected(self):
        chart = ascii_chart({"a": [(0, 0), (9, 9)]}, width=20, height=8)
        plot_lines = [line for line in chart.splitlines() if "|" in line]
        assert len(plot_lines) == 8
        body_widths = {len(line.split("|", 1)[1]) for line in plot_lines}
        assert body_widths == {20}

    def test_markers_cycle_available(self):
        assert len(MARKERS) >= 4

    def test_points_in_correct_corners(self):
        chart = ascii_chart({"a": [(0, 0), (10, 10)]}, width=10, height=5)
        rows = [line.split("|", 1)[1] for line in chart.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("*"), "max point at top right"
        assert rows[-1].startswith("*"), "min point at bottom left"
