"""Property-based tests (hypothesis) for the core invariants.

These encode the paper's lemmas directly:

* Lemma 1 (prefix filtering principle);
* Lemma 2 (index reduction principle);
* soundness of the probing / indexing / accessing upper bounds;
* top-k equivalence with the exhaustive oracle;
* threshold-join equivalence with the naive join.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Cosine,
    Dice,
    Jaccard,
    Overlap,
    naive_threshold_join,
    naive_topk,
    ppjoin_plus,
    topk_join,
)
from repro.data import RecordCollection
from repro.similarity.overlap import overlap_size

from conftest import rounded_multiset

# Heavy Hypothesis/fuzz suite: runs in the slow CI lane.
pytestmark = pytest.mark.slow

token_sets = st.lists(
    st.sets(st.integers(min_value=0, max_value=20), min_size=1, max_size=8),
    min_size=2,
    max_size=15,
)
sorted_records = st.sets(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=12
).map(lambda s: tuple(sorted(s)))
thresholds = st.sampled_from([0.2, 0.4, 0.6, 0.8, 0.95])
similarities = st.sampled_from([Jaccard(), Cosine(), Dice()])


@given(x=sorted_records, y=sorted_records, sim=similarities, t=thresholds)
@settings(max_examples=300, deadline=None)
def test_prefix_filtering_principle(x, y, sim, t):
    """Lemma 1: if sim(x,y) >= t, the t-prefixes share a token."""
    if sim.similarity(x, y) < t:
        return
    prefix_x = x[: sim.probing_prefix_length(len(x), t)]
    prefix_y = y[: sim.probing_prefix_length(len(y), t)]
    assert set(prefix_x) & set(prefix_y)


@given(x=sorted_records, y=sorted_records, sim=similarities, t=thresholds)
@settings(max_examples=300, deadline=None)
def test_index_reduction_principle(x, y, sim, t):
    """Lemma 2: for |y| >= |x|, the probing prefix of y must intersect the
    *indexing* prefix of x whenever sim(x,y) >= t."""
    if len(y) < len(x):
        x, y = y, x
    if sim.similarity(x, y) < t:
        return
    indexing_x = x[: sim.indexing_prefix_length(len(x), t)]
    probing_y = y[: sim.probing_prefix_length(len(y), t)]
    assert set(indexing_x) & set(probing_y)


@given(x=sorted_records, y=sorted_records, sim=similarities)
@settings(max_examples=300, deadline=None)
def test_probing_upper_bound_sound(x, y, sim):
    """sim(x,y) <= probing bound at the first common position in x."""
    common = sorted(set(x) & set(y))
    if not common:
        return
    position = x.index(common[0]) + 1
    assert sim.similarity(x, y) <= sim.probing_upper_bound(
        len(x), position
    ) + 1e-12


@given(x=sorted_records, y=sorted_records, sim=similarities)
@settings(max_examples=300, deadline=None)
def test_indexing_upper_bound_sound_for_equal_or_larger_partner(x, y, sim):
    """Lemma 4's bound holds whenever the partner is no smaller."""
    if len(y) < len(x):
        x, y = y, x
    common = sorted(set(x) & set(y))
    if not common:
        return
    position = x.index(common[0]) + 1
    assert sim.similarity(x, y) <= sim.indexing_upper_bound(
        len(x), position
    ) + 1e-12


@given(x=sorted_records, y=sorted_records, sim=similarities)
@settings(max_examples=300, deadline=None)
def test_accessing_upper_bound_sound(x, y, sim):
    """sim(x,y) <= accessing bound of the two probing bounds."""
    common = sorted(set(x) & set(y))
    if not common:
        return
    pos_x = x.index(common[0]) + 1
    pos_y = y.index(common[0]) + 1
    bound = sim.accessing_upper_bound(
        sim.probing_upper_bound(len(x), pos_x),
        sim.probing_upper_bound(len(y), pos_y),
    )
    assert sim.similarity(x, y) <= bound + 1e-9


@given(x=sorted_records, y=sorted_records, sim=similarities, t=thresholds)
@settings(max_examples=300, deadline=None)
def test_required_overlap_exact(x, y, sim, t):
    alpha = sim.required_overlap(t, len(x), len(y))
    overlap = overlap_size(x, y)
    if sim.similarity(x, y) >= t:
        assert overlap >= alpha
    else:
        assert overlap < alpha


@given(sets=token_sets, k=st.integers(min_value=1, max_value=20))
@settings(max_examples=60, deadline=None)
def test_topk_matches_oracle(sets, k):
    coll = RecordCollection.from_integer_sets(list(sets), dedupe=False)
    got = rounded_multiset(topk_join(coll, k))
    want = rounded_multiset(naive_topk(coll, k))
    assert got == want


@given(sets=token_sets, k=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_topk_cosine_matches_oracle(sets, k):
    coll = RecordCollection.from_integer_sets(list(sets), dedupe=False)
    got = rounded_multiset(topk_join(coll, k, similarity=Cosine()))
    want = rounded_multiset(naive_topk(coll, k, similarity=Cosine()))
    assert got == want


@given(sets=token_sets, t=thresholds)
@settings(max_examples=60, deadline=None)
def test_ppjoin_plus_matches_naive(sets, t):
    coll = RecordCollection.from_integer_sets(list(sets), dedupe=False)
    assert set(ppjoin_plus(coll, t)) == set(naive_threshold_join(coll, t))


@given(sets=token_sets, k=st.integers(min_value=1, max_value=10))
@settings(max_examples=40, deadline=None)
def test_overlap_similarity_topk(sets, k):
    coll = RecordCollection.from_integer_sets(list(sets), dedupe=False)
    got = rounded_multiset(topk_join(coll, k, similarity=Overlap()))
    want = rounded_multiset(naive_topk(coll, k, similarity=Overlap()))
    assert got == want


@given(
    size=st.integers(min_value=1, max_value=40),
    t=st.floats(min_value=0.05, max_value=1.0),
    sim=similarities,
)
@settings(max_examples=300, deadline=None)
def test_prefix_length_inverts_probing_bound(size, t, sim):
    """The probing prefix is exactly the positions with bound >= t."""
    length = sim.probing_prefix_length(size, t)
    if length < size:
        assert sim.probing_upper_bound(size, length + 1) < t
    if length >= 1:
        assert sim.probing_upper_bound(size, length) >= t
    assert 0 <= length <= size
    assert not math.isnan(length)
