"""Tests for the weighted similarity extension (repro.weighted)."""

import math

import pytest

from repro import Jaccard, naive_threshold_join, naive_topk
from repro.data import RecordCollection
from repro.weighted import (
    WeightedCollection,
    WeightedCosine,
    WeightedJaccard,
    idf_weights,
    naive_weighted_threshold_join,
    naive_weighted_topk,
    weighted_threshold_join,
    weighted_topk_join,
)

from conftest import rounded_multiset


def random_sets(rng, count, universe, max_size):
    return [
        [rng.randrange(universe) for __ in range(rng.randint(1, max_size))]
        for __ in range(count)
    ]


def random_weights(rng, universe):
    return {token: rng.uniform(0.1, 5.0) for token in range(universe)}


class TestWeightedCollection:
    def test_idf_weights_rarer_is_heavier(self):
        weights = idf_weights([(0, 1), (0, 2), (0, 3)])
        assert weights[1] > weights[0]

    def test_heaviest_tokens_lead_prefixes(self, rng):
        sets = random_sets(rng, 10, 15, 6)
        weights = random_weights(rng, 15)
        coll = WeightedCollection.from_integer_sets(sets, weights)
        for record in coll:
            record_weights = list(record.weights)
            assert record_weights == sorted(record_weights, reverse=True)

    def test_records_sorted_by_total_weight(self, rng):
        sets = random_sets(rng, 15, 10, 5)
        coll = WeightedCollection.from_integer_sets(sets)
        totals = [record.total_weight for record in coll]
        assert totals == sorted(totals)

    def test_suffix_weights_consistent(self, rng):
        sets = random_sets(rng, 5, 10, 6)
        coll = WeightedCollection.from_integer_sets(sets)
        for record in coll:
            assert record.suffix_weights[0] == pytest.approx(
                sum(record.weights)
            )
            assert record.suffix_weights[-1] == 0.0
            assert record.squared_norm == pytest.approx(
                sum(w * w for w in record.weights)
            )

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedCollection.from_integer_sets([[0]], {0: 0.0})


class TestWeightedFunctions:
    def test_jaccard_known_value(self):
        coll = WeightedCollection.from_integer_sets(
            [[0, 1], [1, 2]], {0: 1.0, 1: 2.0, 2: 3.0}
        )
        sim = WeightedJaccard()
        # shared = {1} weight 2; union = 1 + 2 + 3 = 6.
        value = sim.similarity(coll[0], coll[1])
        assert value == pytest.approx(2.0 / 6.0)

    def test_cosine_known_value(self):
        coll = WeightedCollection.from_integer_sets(
            [[0, 1], [1, 2]], {0: 1.0, 1: 2.0, 2: 3.0}
        )
        sim = WeightedCosine()
        # dot = 4; norms: sqrt(1+4)=sqrt5, sqrt(4+9)=sqrt13.
        value = sim.similarity(coll[0], coll[1])
        assert value == pytest.approx(4.0 / math.sqrt(5 * 13))

    def test_identity_is_one(self, rng):
        sets = random_sets(rng, 6, 10, 5)
        coll = WeightedCollection.from_integer_sets(sets)
        for sim in (WeightedJaccard(), WeightedCosine()):
            for record in coll:
                assert sim.similarity(record, record) == pytest.approx(1.0)

    def test_probing_bound_sound(self, rng):
        # sim(x, y) <= probing bound at the first shared position in x.
        sets = random_sets(rng, 20, 12, 6)
        coll = WeightedCollection.from_integer_sets(
            sets, random_weights(rng, 12)
        )
        for sim in (WeightedJaccard(), WeightedCosine()):
            for a in range(len(coll)):
                for b in range(a + 1, len(coll)):
                    x, y = coll[a], coll[b]
                    shared = set(x.tokens) & set(y.tokens)
                    if not shared:
                        continue
                    position = x.tokens.index(min(shared)) + 1
                    assert sim.similarity(x, y) <= (
                        sim.probing_upper_bound(x, position) + 1e-9
                    )

    def test_prefix_length_inverts_bound(self, rng):
        sets = random_sets(rng, 10, 12, 6)
        coll = WeightedCollection.from_integer_sets(sets)
        sim = WeightedJaccard()
        for record in coll:
            for threshold in (0.2, 0.5, 0.8):
                length = sim.probing_prefix_length(record, threshold)
                if length < len(record.tokens):
                    assert sim.probing_upper_bound(
                        record, length + 1
                    ) < threshold
                if length >= 1:
                    assert sim.probing_upper_bound(
                        record, length
                    ) >= threshold


class TestWeightedThresholdJoin:
    @pytest.mark.parametrize(
        "sim", [WeightedJaccard(), WeightedCosine()], ids=lambda s: s.name
    )
    @pytest.mark.parametrize("threshold", [0.3, 0.6, 0.9])
    def test_matches_oracle(self, sim, threshold, rng):
        for __ in range(12):
            universe = rng.randint(5, 20)
            sets = random_sets(rng, rng.randint(2, 25), universe, 7)
            coll = WeightedCollection.from_integer_sets(
                sets, random_weights(rng, universe)
            )
            got = {
                (pair.x, pair.y, round(pair.similarity, 9))
                for pair in weighted_threshold_join(coll, threshold, sim)
            }
            want = {
                (pair.x, pair.y, round(pair.similarity, 9))
                for pair in naive_weighted_threshold_join(
                    coll, threshold, sim
                )
            }
            assert got == want

    def test_invalid_threshold(self, rng):
        coll = WeightedCollection.from_integer_sets([[1], [2]])
        with pytest.raises(ValueError):
            weighted_threshold_join(coll, 0.0)


class TestWeightedTopkJoin:
    @pytest.mark.parametrize(
        "sim", [WeightedJaccard(), WeightedCosine()], ids=lambda s: s.name
    )
    def test_matches_oracle(self, sim, rng):
        for __ in range(15):
            universe = rng.randint(5, 20)
            sets = random_sets(rng, rng.randint(2, 25), universe, 7)
            coll = WeightedCollection.from_integer_sets(
                sets, random_weights(rng, universe)
            )
            k = rng.randint(1, 15)
            got = rounded_multiset(weighted_topk_join(coll, k, sim))
            want = rounded_multiset(naive_weighted_topk(coll, k, sim))
            assert got == want

    def test_uniform_weights_reduce_to_unweighted(self, rng):
        # With all weights equal, weighted Jaccard == Jaccard; the two
        # top-k pipelines must return the same similarity multiset.
        for __ in range(8):
            universe = rng.randint(5, 15)
            sets = random_sets(rng, rng.randint(3, 20), universe, 6)
            weighted = WeightedCollection.from_integer_sets(
                sets, {token: 1.0 for token in range(universe)}
            )
            unweighted = RecordCollection.from_integer_sets(
                sets, dedupe=False
            )
            k = rng.randint(1, 10)
            got = rounded_multiset(weighted_topk_join(weighted, k))
            want = rounded_multiset(naive_topk(unweighted, k, Jaccard()))
            assert got == want

    def test_uniform_threshold_reduces_to_unweighted(self, rng):
        universe = 12
        sets = random_sets(rng, 20, universe, 6)
        weighted = WeightedCollection.from_integer_sets(
            sets, {token: 2.5 for token in range(universe)}
        )
        unweighted = RecordCollection.from_integer_sets(sets, dedupe=False)
        got = sorted(
            round(p.similarity, 9)
            for p in weighted_threshold_join(weighted, 0.5)
        )
        want = sorted(
            round(p.similarity, 9)
            for p in naive_threshold_join(unweighted, 0.5, Jaccard())
        )
        assert got == want

    def test_zero_fill_when_disjoint(self):
        coll = WeightedCollection.from_integer_sets([[0], [1], [2]])
        results = weighted_topk_join(coll, 3)
        assert len(results) == 3
        assert all(r.similarity == 0.0 for r in results)

    def test_heavy_rare_token_dominates(self):
        # Two pairs share one token each; the pair sharing the heavy token
        # must rank first under weighted Jaccard.
        weights = {0: 10.0, 1: 0.1, 2: 1.0, 3: 1.0, 4: 1.0, 5: 1.0}
        sets = [[0, 2], [0, 3], [1, 4], [1, 5]]
        coll = WeightedCollection.from_integer_sets(sets, weights)
        best = weighted_topk_join(coll, 1)[0]
        shared = set(coll[best.x].tokens) & set(coll[best.y].tokens)
        heavy_rank = coll[best.x].tokens[0]
        assert shared == {heavy_rank}
        assert best.similarity == pytest.approx(10.0 / 12.0)

    def test_invalid_k(self):
        coll = WeightedCollection.from_integer_sets([[1]])
        with pytest.raises(ValueError):
            weighted_topk_join(coll, 0)
