"""Metamorphic relations over the invariant-checked sequential join."""

from __future__ import annotations

import random

import pytest

from repro.core.topk_join import TopkOptions, topk_join
from repro.data.records import RecordCollection
from repro.oracle.metamorphic import (
    inject_duplicates,
    metamorphic_failures,
    rename_tokens,
    shuffle_records,
)
from repro.oracle.reference import topk_multiset


def _backend(token_lists, k, sim):
    collection = RecordCollection.from_integer_sets(token_lists, dedupe=False)
    return topk_join(
        collection, k, similarity=sim,
        options=TopkOptions(check_invariants=True),
    )


def test_rename_tokens_is_a_bijection():
    rng = random.Random(1)
    lists = [[3, 7, 7, 20], [5], [3, 5]]
    renamed = rename_tokens(lists, rng)
    assert [len(tokens) for tokens in renamed] == [4, 1, 2]
    old_universe = {t for tokens in lists for t in tokens}
    new_universe = {t for tokens in renamed for t in tokens}
    assert len(new_universe) == len(old_universe)
    # Equal tokens stay equal, distinct tokens stay distinct (per position).
    assert renamed[0][1] == renamed[0][2]
    assert renamed[2][1] == renamed[1][0]


def test_shuffle_records_preserves_content():
    rng = random.Random(2)
    lists = [[1, 2], [3], [4, 5, 6]]
    shuffled = shuffle_records(lists, rng)
    assert sorted(sorted(t) for t in shuffled) == sorted(
        sorted(t) for t in lists
    )


def test_inject_duplicates_copies_nonempty_records():
    rng = random.Random(3)
    lists = [[], [1, 2]]
    enriched, injected = inject_duplicates(lists, rng, copies=3)
    assert injected == 3
    assert enriched[:2] == [[], [1, 2]]
    assert all(tokens == [1, 2] for tokens in enriched[2:])
    assert inject_duplicates([[], []], rng) == ([[], []], 0)


@pytest.mark.parametrize("name", ["jaccard", "cosine", "dice", "overlap"])
def test_relations_hold_on_random_inputs(name):
    rng = random.Random(hash(name) & 0xFFFF)
    for __ in range(4):
        lists = [
            [rng.randrange(12) for __ in range(rng.randint(1, 6))]
            for __ in range(rng.randint(4, 18))
        ]
        failures = metamorphic_failures(
            _backend, lists, rng.randint(1, 6), name, rng
        )
        assert failures == []


def test_relations_flag_a_broken_backend():
    """A backend that drops its best result violates k-monotonicity or
    duplicate injection — the relations are not vacuous."""

    def lossy_backend(token_lists, k, sim):
        return _backend(token_lists, k, sim)[1:]  # drop the top pair

    rng = random.Random(99)
    lists = [[0, 1, 2], [0, 1, 2], [0, 1], [3]]
    failures = metamorphic_failures(lossy_backend, lists, 2, "jaccard", rng)
    assert failures


def test_duplicate_injection_adds_perfect_pair():
    from repro.similarity.functions import Jaccard

    rng = random.Random(5)
    lists = [[0, 1], [2, 3], [4, 5]]
    enriched, injected = inject_duplicates(lists, rng, copies=1)
    assert injected == 1
    best = topk_multiset(_backend(enriched, 1, Jaccard()))
    assert best == [1.0]
