"""Pin the bound formulas to hand-computed values from the paper.

The probing bound (Lemma 1 / Algorithm 5) and indexing bound (Lemma 4 /
Algorithm 8) instantiate, per Section VI's table, to closed forms in
``(|x|, p)``.  These tests evaluate those closed forms with exact
``Fraction`` arithmetic and require the implementation to match to the
last float digit — the off-by-one family of bugs (see
``repro.oracle.faults``) cannot survive this pinning.  The prefix-event
queue is additionally pinned to the exact pop sequence a worked example
produces.
"""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from conftest import make_collection
from repro.core.events import EventQueue
from repro.similarity.functions import Cosine, Dice, Jaccard, Overlap


def test_jaccard_probing_bounds_size5():
    """ub_p = 1 - (p-1)/|x|  (Section II-B): 1, .8, .6, .4, .2 for |x|=5."""
    sim = Jaccard()
    expected = [1.0, 0.8, 0.6, 0.4, 0.2]
    actual = [sim.probing_upper_bound(5, p) for p in range(1, 6)]
    assert actual == pytest.approx(expected, abs=0)
    assert sim.probing_upper_bound(5, 6) == 0.0


def test_jaccard_indexing_bounds_size5():
    """ub_i = (|x|-p+1)/(|x|+p-1)  (Lemma 4): 1, 4/6, 3/7, 2/8, 1/9."""
    sim = Jaccard()
    expected = [1.0, 4 / 6, 3 / 7, 2 / 8, 1 / 9]
    actual = [sim.indexing_upper_bound(5, p) for p in range(1, 6)]
    assert actual == pytest.approx(expected, abs=0)


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13, 40])
def test_jaccard_bounds_closed_forms(size):
    sim = Jaccard()
    for p in range(1, size + 1):
        ub_p = Fraction(size - p + 1, size)
        ub_i = Fraction(size - p + 1, size + p - 1)
        assert sim.probing_upper_bound(size, p) == float(ub_p)
        assert sim.indexing_upper_bound(size, p) == float(ub_i)


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13, 40])
def test_cosine_bounds_closed_forms(size):
    """Section VI: ub_p = sqrt((|x|-p+1)/|x|), ub_i = (|x|-p+1)/|x|."""
    sim = Cosine()
    for p in range(1, size + 1):
        o = size - p + 1
        assert sim.probing_upper_bound(size, p) == o / math.sqrt(size * o)
        assert sim.indexing_upper_bound(size, p) == o / math.sqrt(
            size * size
        )
        assert sim.indexing_upper_bound(size, p) == pytest.approx(
            float(Fraction(o, size)), rel=1e-15
        )


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13, 40])
def test_dice_bounds_closed_forms(size):
    """Section VI: ub_p = 2(|x|-p+1)/(2|x|-p+1), ub_i = (|x|-p+1)/|x|."""
    sim = Dice()
    for p in range(1, size + 1):
        o = size - p + 1
        assert sim.probing_upper_bound(size, p) == float(
            Fraction(2 * o, size + o)
        )
        assert sim.indexing_upper_bound(size, p) == float(
            Fraction(2 * o, 2 * size)
        )


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13, 40])
def test_overlap_bounds_closed_forms(size):
    """Footnote 1: both bounds are simply the remaining suffix length."""
    sim = Overlap()
    for p in range(1, size + 1):
        assert sim.probing_upper_bound(size, p) == float(size - p + 1)
        assert sim.indexing_upper_bound(size, p) == float(size - p + 1)


def test_jaccard_prefix_lengths_match_paper_formulas():
    """probing |x| - ceil(t|x|) + 1; indexing |x| - ceil(2t/(1+t)|x|) + 1."""
    sim = Jaccard()
    for size in (1, 2, 5, 9, 20):
        for t_num in range(1, 20):
            t = Fraction(t_num, 20)
            probing = size - math.ceil(t * size) + 1
            indexing = size - math.ceil(2 * t / (1 + t) * size) + 1
            assert sim.probing_prefix_length(size, float(t)) == probing
            assert sim.indexing_prefix_length(size, float(t)) == indexing


def test_event_queue_pop_sequence_worked_example():
    """Two records of sizes 2 and 3: the uncompressed queue must pop
    exactly 1, 1, 2/3, 1/2, 1/3 (Jaccard ub_p in non-increasing order)."""
    coll = make_collection([0, 1], [0, 2, 3])
    queue = EventQueue(coll, Jaccard(), compressed=False)
    popped = []
    while queue:
        bound, prefix, rids = queue.pop()
        popped.append(bound)
        for rid in rids:
            queue.push_next(len(coll[rid]), prefix, [rid], cutoff=-1.0)
    assert popped == [1.0, 1.0, 2 / 3, 1 / 2, 1 / 3]


def test_event_queue_compression_preserves_bounds():
    """Compressed events batch same-size records but pop identical bounds."""
    coll = make_collection([0, 1], [2, 3], [0, 2, 3])
    plain = EventQueue(coll, Jaccard(), compressed=False)
    compressed = EventQueue(coll, Jaccard(), compressed=True)

    def drain(queue):
        sequence = []
        while queue:
            bound, prefix, rids = queue.pop()
            for rid in sorted(rids):
                sequence.append((round(bound, 12), prefix, rid))
            size = len(coll[rids[0]])
            queue.push_next(size, prefix, rids, cutoff=-1.0)
        return sorted(sequence)

    assert drain(plain) == drain(compressed)


def test_bounds_against_from_overlap_identity():
    """The Section VI table rows are all F(|x|-p+1, |x|, ·) in disguise —
    the identity the runtime invariant layer relies on."""
    for sim in (Jaccard(), Cosine(), Dice(), Overlap()):
        for size in (1, 3, 7, 12):
            for p in range(1, size + 1):
                o = size - p + 1
                assert sim.probing_upper_bound(size, p) == sim.from_overlap(
                    o, size, o
                )
                assert sim.indexing_upper_bound(size, p) == sim.from_overlap(
                    o, size, size
                )
