"""Unit tests for repro.data.tokenize."""

import pytest

from repro.data.tokenize import (
    clean_text,
    number_occurrences,
    tokenize_qgrams,
    tokenize_words,
)


class TestCleanText:
    def test_lowercases(self):
        assert clean_text("ABCdef") == "abcdef"

    def test_replaces_whitespace_with_underscores(self):
        assert clean_text("a b\tc") == "a_b_c"

    def test_replaces_punctuation(self):
        assert clean_text("a,b.c!") == "a_b_c_"

    def test_preserves_digits(self):
        assert clean_text("abc123") == "abc123"

    def test_empty_string(self):
        assert clean_text("") == ""


class TestNumberOccurrences:
    def test_no_duplicates_unchanged(self):
        assert number_occurrences(["a", "b", "c"]) == ["a", "b", "c"]

    def test_paper_example(self):
        # "the lord of the rings": the second "the" becomes a fresh token.
        tokens = number_occurrences(["the", "lord", "of", "the", "rings"])
        assert tokens == ["the", "lord", "of", "the#1", "rings"]

    def test_triple_occurrence(self):
        assert number_occurrences(["x", "x", "x"]) == ["x", "x#1", "x#2"]

    def test_result_is_duplicate_free(self):
        tokens = number_occurrences(["a", "a", "b", "a", "b"])
        assert len(tokens) == len(set(tokens))

    def test_empty(self):
        assert number_occurrences([]) == []


class TestTokenizeWords:
    def test_basic_split(self):
        assert tokenize_words("the lord") == ["the", "lord"]

    def test_lowercases(self):
        assert tokenize_words("The LORD") == ["the", "lord"]

    def test_numbers_duplicates(self):
        assert tokenize_words("the the") == ["the", "the#1"]

    def test_multiple_spaces(self):
        assert tokenize_words("a   b") == ["a", "b"]

    def test_empty_text(self):
        assert tokenize_words("") == []


class TestTokenizeQgrams:
    def test_basic_trigrams(self):
        assert tokenize_qgrams("abcd", q=3) == ["abc", "bcd"]

    def test_cleaning_applied(self):
        assert tokenize_qgrams("ab-cd", q=3) == ["ab_", "b_c", "_cd"]

    def test_short_string_padded(self):
        grams = tokenize_qgrams("ab", q=3)
        assert grams == ["ab_"]

    def test_q1_is_characters(self):
        assert tokenize_qgrams("abc", q=1) == ["a", "b", "c"]

    def test_duplicate_grams_numbered(self):
        grams = tokenize_qgrams("aaaa", q=2)
        assert grams == ["aa", "aa#1", "aa#2"]

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            tokenize_qgrams("abc", q=0)

    def test_gram_count(self):
        text = "abcdefghij"
        assert len(tokenize_qgrams(text, q=3)) == len(text) - 2
