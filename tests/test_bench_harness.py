"""Unit tests for the benchmark harness plumbing (repro.bench)."""

import os

import pytest

from repro.bench import WORKLOADS, format_table, workload
from repro.bench.reporting import repo_root, results_dir, write_report


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["k", "value"], [(1, 2.5), (100, 0.25)])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1, "all lines equally wide"

    def test_float_rendering(self):
        table = format_table(["v"], [(0.12345,), (12.3456,), (12345.6,)])
        assert "0.1234" in table or "0.1235" in table
        assert "12.346" in table or "12.345" in table
        assert "12346" in table

    def test_zero_and_string_cells(self):
        table = format_table(["a", "b"], [("name", 0.0)])
        assert "name" in table and "0" in table

    def test_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table


class TestWriteReport:
    def test_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.bench.reporting.results_dir", lambda: str(tmp_path)
        )
        path = write_report("unit_test", "Title", "body")
        assert os.path.exists(path)
        content = open(path).read()
        assert content.startswith("Title")
        assert "body" in content

    def test_results_dir_is_creatable(self):
        path = results_dir()
        assert os.path.isdir(path)
        assert path.endswith(os.path.join("benchmarks", "results"))


class TestResultsDirResolution:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        target = tmp_path / "artifacts"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(target))
        path = results_dir()
        assert path == str(target)
        assert os.path.isdir(path)

    def test_repo_root_finds_pyproject_marker(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert repo_root(str(nested)) == str(tmp_path)

    def test_repo_root_finds_git_marker(self, tmp_path):
        (tmp_path / ".git").mkdir()
        nested = tmp_path / "deep"
        nested.mkdir()
        assert repo_root(str(nested)) == str(tmp_path)

    def test_repo_root_none_without_markers(self, tmp_path):
        nested = tmp_path / "plain"
        nested.mkdir()
        assert repo_root(str(nested)) is None

    def test_results_dir_walks_to_marker_from_cwd(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        monkeypatch.chdir(nested)
        path = results_dir()
        assert path == str(tmp_path / "benchmarks" / "results")
        assert os.path.isdir(path)

    def test_results_dir_falls_back_to_cwd(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        nested = tmp_path / "nowhere"
        nested.mkdir()
        monkeypatch.chdir(nested)
        path = results_dir()
        assert path == str(nested / "benchmarks" / "results")


class TestWorkloads:
    def test_registry_names(self):
        assert set(WORKLOADS) == {
            "dblp", "trec", "trec-3gram", "uniref-3gram",
        }

    def test_every_workload_well_formed(self):
        for name, bench in WORKLOADS.items():
            assert bench.name == name
            assert bench.k_values
            assert bench.k_values == sorted(bench.k_values)
            assert bench.maxdepth in (2, 4)

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError, match="unknown workload"):
            workload("mnist")

    def test_qgram_workloads_use_deeper_suffix_filter(self):
        assert workload("trec-3gram").maxdepth == 4
        assert workload("uniref-3gram").maxdepth == 4
        assert workload("dblp").maxdepth == 2
