"""Smoke tests: the runnable examples must actually run.

Each fast example's ``main()`` is executed in-process with stdout
captured; the slow ones (full workload generation) are exercised by the
benchmark suite instead.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, capsys) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(
        "example_" + name.replace(".py", ""), path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "Top-5 most similar title pairs" in out
        assert "0.750" in out

    def test_catalog_matching(self, capsys):
        out = run_example("catalog_matching.py", capsys)
        assert "Top-12 cross-catalog matches" in out
        assert "<->" in out

    def test_search_and_dedup(self, capsys):
        out = run_example("search_and_dedup.py", capsys)
        assert "duplicate groups" in out
        assert "Query:" in out
        assert "edit distance" in out

    def test_weighted_join(self, capsys):
        out = run_example("weighted_join.py", capsys)
        assert "Unweighted Jaccard top-2" in out
        assert "Weighted Jaccard top-2" in out
        # The ranking must flip: the rare-term pair wins only weighted.
        weighted_section = out.split("Weighted Jaccard top-2")[1]
        assert "zolpidem" in weighted_section.splitlines()[1]

    def test_protein_sequences(self, capsys):
        out = run_example("protein_sequences.py", capsys)
        assert "most similar sequence pairs" in out
        assert "postings inserted" in out

    @pytest.mark.parametrize(
        "name",
        ["near_duplicate_detection.py", "threshold_vs_topk.py"],
    )
    def test_slow_examples_compile(self, name):
        path = os.path.join(EXAMPLES_DIR, name)
        with open(path) as handle:
            compile(handle.read(), path, "exec")
