"""Correctness tests for the core topk-join algorithm.

The ground truth is the exhaustive ``naive_topk``; answers are compared as
similarity multisets because top-k with ties is unique only up to permuting
tied pairs.
"""

import itertools

import pytest

from repro import (
    Cosine,
    Dice,
    Jaccard,
    Overlap,
    TopkOptions,
    TopkStats,
    naive_topk,
    topk_join,
    topk_join_iter,
)
from repro.data import RecordCollection, random_integer_collection

from conftest import make_collection, rounded_multiset


def assert_matches_naive(collection, k, sim=None, options=None):
    got = rounded_multiset(
        topk_join(collection, k, similarity=sim, options=options)
    )
    want = rounded_multiset(naive_topk(collection, k, similarity=sim))
    assert got == want


class TestSmallExamples:
    def test_obvious_best_pair(self):
        coll = make_collection([1, 2, 3], [1, 2, 3, 4], [9, 10])
        best = topk_join(coll, 1)[0]
        assert best.similarity == pytest.approx(3 / 4)

    def test_paper_style_near_duplicates(self):
        texts = [
            "efficient set similarity joins",
            "efficient set similarity join",
            "graph pattern matching",
        ]
        coll = RecordCollection.from_texts(texts)
        best = topk_join(coll, 1)[0]
        assert best.similarity >= 0.5

    def test_k_equals_all_pairs(self):
        coll = make_collection([1, 2], [2, 3], [3, 4])
        results = topk_join(coll, 3)
        assert len(results) == 3

    def test_k_exceeds_all_pairs_zero_fill(self):
        coll = make_collection([1], [2], [3])
        results = topk_join(coll, 10)
        assert len(results) == 3  # only 3 pairs exist
        assert all(r.similarity == 0.0 for r in results)

    def test_single_record_collection(self):
        coll = make_collection([1, 2, 3])
        assert topk_join(coll, 5) == []

    def test_invalid_k(self):
        coll = make_collection([1], [2])
        with pytest.raises(ValueError):
            topk_join(coll, 0)

    def test_results_sorted_descending(self):
        coll = make_collection([1, 2, 3], [1, 2, 4], [1, 9, 10], [2, 3, 4])
        values = [r.similarity for r in topk_join(coll, 6)]
        assert values == sorted(values, reverse=True)

    def test_pairs_are_distinct(self, rng):
        coll = random_integer_collection(40, 15, 8, rng=rng)
        results = topk_join(coll, 30)
        pairs = [(r.x, r.y) for r in results]
        assert len(pairs) == len(set(pairs))


class TestEquivalenceWithOracle:
    @pytest.mark.parametrize(
        "sim",
        [Jaccard(), Cosine(), Dice(), Overlap()],
        ids=lambda s: s.name,
    )
    def test_each_similarity(self, sim, small_random_collections):
        for coll in small_random_collections[:10]:
            for k in (1, 5, len(coll)):
                assert_matches_naive(coll, k, sim=sim)

    def test_heavy_tie_collections(self, rng):
        # Tiny universes produce many identical similarity values.
        for __ in range(10):
            coll = random_integer_collection(20, universe=4, max_size=3, rng=rng)
            assert_matches_naive(coll, 10)

    def test_duplicate_records(self):
        coll = RecordCollection.from_integer_sets(
            [[1, 2, 3]] * 4 + [[4, 5]], dedupe=False
        )
        results = topk_join(coll, 6)
        assert [round(r.similarity, 6) for r in results[:6]].count(1.0) == 6

    def test_large_k_matches(self, rng):
        coll = random_integer_collection(25, 12, 6, rng=rng)
        assert_matches_naive(coll, 200)


class TestOptionAblations:
    """Every optimisation combination must return the same answer."""

    GRID = list(
        itertools.product(
            [True, False],                      # compress_events
            ["optimized", "all", "off"],        # verification_mode
            [True, False],                      # index_optimization
            [True, False],                      # access_optimization
        )
    )

    @pytest.mark.parametrize(
        "compress,verification,index_opt,access_opt", GRID
    )
    def test_grid(self, compress, verification, index_opt, access_opt, rng):
        coll = random_integer_collection(30, 15, 8, rng=rng)
        options = TopkOptions(
            compress_events=compress,
            verification_mode=verification,
            index_optimization=index_opt,
            access_optimization=access_opt,
        )
        assert_matches_naive(coll, 12, options=options)

    @pytest.mark.parametrize("positional", [True, False])
    @pytest.mark.parametrize("suffix", [True, False])
    @pytest.mark.parametrize("seed", [True, False])
    def test_filter_and_seed_toggles(self, positional, suffix, seed, rng):
        coll = random_integer_collection(30, 12, 8, rng=rng)
        options = TopkOptions(
            positional_filter=positional,
            suffix_filter=suffix,
            seed_results=seed,
        )
        assert_matches_naive(coll, 12, options=options)

    def test_everything_off(self, rng):
        coll = random_integer_collection(30, 15, 8, rng=rng)
        options = TopkOptions(
            compress_events=False,
            verification_mode="off",
            index_optimization=False,
            access_optimization=False,
            positional_filter=False,
            suffix_filter=False,
            seed_results=False,
        )
        assert_matches_naive(coll, 12, options=options)


class TestStats:
    def test_counters_populated(self, rng):
        coll = random_integer_collection(50, 20, 8, rng=rng)
        stats = TopkStats()
        topk_join(coll, 20, stats=stats)
        assert stats.events > 0
        assert stats.verifications > 0
        assert stats.index_inserted > 0
        assert stats.index_entries_peak > 0

    def test_indexing_opt_reduces_index_entries(self, rng):
        coll = random_integer_collection(80, 25, 10, rng=rng)
        with_opt, without_opt = TopkStats(), TopkStats()
        a = topk_join(
            coll, 20, options=TopkOptions(index_optimization=True),
            stats=with_opt,
        )
        b = topk_join(
            coll, 20, options=TopkOptions(index_optimization=False),
            stats=without_opt,
        )
        assert rounded_multiset(a) == rounded_multiset(b)
        assert with_opt.index_inserted <= without_opt.index_inserted

    def test_verifications_per_record(self):
        stats = TopkStats()
        stats.verifications = 60
        assert stats.verifications_per_record(30) == pytest.approx(2.0)
        assert TopkStats().verifications_per_record(0) == 0.0


class TestIterator:
    def test_iterator_matches_list_api(self, rng):
        coll = random_integer_collection(40, 15, 8, rng=rng)
        from_iter = list(topk_join_iter(coll, 15))
        from_list = topk_join(coll, 15)
        assert rounded_multiset(from_iter) == rounded_multiset(
            [r for r in from_list if r.similarity > 0]
        ) or rounded_multiset(from_iter) == rounded_multiset(from_list)

    def test_yields_in_descending_order(self, rng):
        for __ in range(5):
            coll = random_integer_collection(40, 12, 8, rng=rng)
            values = [r.similarity for r in topk_join_iter(coll, 20)]
            assert values == sorted(values, reverse=True)

    def test_progressive_prefix_is_final(self, rng):
        # Stopping the iterator early must still give a prefix of the true
        # top-k similarity multiset (the "stop any time" guarantee).
        coll = random_integer_collection(50, 15, 8, rng=rng)
        want = rounded_multiset(naive_topk(coll, 10))
        iterator = topk_join_iter(coll, 10)
        first_three = [next(iterator) for __ in range(3)]
        assert rounded_multiset(first_three) == want[:3]
