"""Unit tests for the parallel backend's pieces (repro.parallel)."""

import pytest

from repro import TopkStats, parallel_topk_join, topk_join
from repro.cli import main
from repro.data import random_integer_collection
from repro.parallel import (
    LocalSimilarityBound,
    SharedSimilarityBound,
    merge_task_results,
    shard_collection,
    subproblem,
    task_plan,
)

from conftest import make_collection, rounded_multiset


class TestShardCollection:
    def test_covers_every_rid_exactly_once(self, rng):
        coll = random_integer_collection(37, universe=20, max_size=6, rng=rng)
        shards = shard_collection(coll, 5)
        seen = [rid for shard in shards for rid in shard]
        assert sorted(seen) == list(range(len(coll)))
        assert len(seen) == len(set(seen))

    def test_shards_are_contiguous_and_balanced(self, rng):
        coll = random_integer_collection(23, universe=20, max_size=6, rng=rng)
        shards = shard_collection(coll, 4)
        for shard in shards:
            assert list(shard) == list(range(shard[0], shard[-1] + 1))
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_clamped_to_collection_size(self):
        coll = make_collection((1, 2), (2, 3))
        assert len(shard_collection(coll, 10)) == 2
        assert len(shard_collection(coll, 1)) == 1

    def test_rejects_nonpositive_shards(self):
        coll = make_collection((1, 2), (2, 3))
        with pytest.raises(ValueError):
            shard_collection(coll, 0)


class TestTaskPlan:
    def test_counts_and_order(self):
        plan = task_plan(4)
        assert len(plan) == 4 * 5 // 2
        assert plan[:4] == [(0, 0), (1, 1), (2, 2), (3, 3)]
        assert set(plan[4:]) == {(i, j) for i in range(4) for j in range(i + 1, 4)}

    def test_single_shard(self):
        assert task_plan(1) == [(0, 0)]


class TestSubproblem:
    def test_diagonal_keeps_global_rids_in_source_id(self):
        coll = make_collection((1,), (1, 2), (2, 3), (1, 2, 3, 4))
        sub, sides = subproblem(coll, (1, 3))
        assert sides is None
        assert [r.source_id for r in sub.records] == [1, 3]
        assert [r.tokens for r in sub.records] == [
            coll.records[1].tokens,
            coll.records[3].tokens,
        ]

    def test_cross_labels_sides(self):
        coll = make_collection((1,), (1, 2), (2, 3), (1, 2, 3, 4))
        sub, sides = subproblem(coll, (0, 2), (1, 3))
        assert [r.source_id for r in sub.records] == [0, 1, 2, 3]
        assert list(sides) == [0, 1, 0, 1]


class TestBounds:
    def test_local_bound_is_monotone(self):
        bound = LocalSimilarityBound(0.25)
        assert bound.get() == 0.25
        bound.offer(0.5)
        assert bound.refresh() == 0.5
        bound.offer(0.3)
        assert bound.get() == 0.5

    def test_shared_bound_is_monotone(self):
        shared = SharedSimilarityBound(floor=0.1)
        assert shared.get() == 0.1
        shared.offer(0.7)
        assert shared.refresh() == 0.7
        shared.offer(0.2)
        assert shared.refresh() == 0.7

    def test_shared_bound_propagates_between_wrappers(self):
        raw = SharedSimilarityBound(floor=0.0).raw
        a = SharedSimilarityBound(raw)
        b = SharedSimilarityBound(raw)
        a.offer(0.9)
        assert b.get() == 0.0  # cached until an explicit refresh
        assert b.refresh() == 0.9

    def test_shared_bound_generation_gates_refresh(self):
        raw = SharedSimilarityBound(floor=0.0).raw
        a = SharedSimilarityBound(raw)
        b = SharedSimilarityBound(raw)
        generation = b.generation.value
        a.offer(0.4)
        assert b.generation.value == generation + 1
        assert b.refresh() == 0.4
        # Re-offering a non-improving bound must not bump the generation.
        a.offer(0.4)
        a.offer(0.2)
        assert b.generation.value == generation + 1


class TestMerger:
    def test_dedup_keeps_best_and_truncates(self):
        rows = [
            [(0, 1, 0.5), (0, 2, 0.9)],
            [(0, 1, 0.5), (1, 2, 0.7)],
            [(3, 4, 0.2)],
        ]
        merged = merge_task_results(rows, 3)
        assert [(r.x, r.y, r.similarity) for r in merged] == [
            (0, 2, 0.9),
            (1, 2, 0.7),
            (0, 1, 0.5),
        ]

    def test_deterministic_tie_order(self):
        rows = [[(2, 3, 0.5)], [(0, 1, 0.5)], [(1, 2, 0.5)]]
        merged = merge_task_results(rows, 3)
        assert [(r.x, r.y) for r in merged] == [(0, 1), (1, 2), (2, 3)]


class TestParallelJoin:
    def test_rejects_bad_k(self):
        coll = make_collection((1, 2), (2, 3))
        with pytest.raises(ValueError):
            parallel_topk_join(coll, 0)

    def test_oversized_shard_request_is_clamped(self, rng):
        # Unclamped, shards=500 on 60 records would mean ~1.8k tiny tasks;
        # the ceiling keeps the task count sane and the answer exact.
        coll = random_integer_collection(60, universe=25, max_size=7, rng=rng)
        results = parallel_topk_join(coll, 8, workers=1, shards=500)
        assert rounded_multiset(results) == rounded_multiset(topk_join(coll, 8))

    def test_single_shard_delegates_to_sequential(self):
        coll = make_collection((1, 2), (1, 2, 3), (4, 5))
        results = parallel_topk_join(coll, 2, workers=1, shards=1)
        assert rounded_multiset(results) == rounded_multiset(topk_join(coll, 2))

    def test_pads_with_zero_pairs(self):
        coll = make_collection((1, 2), (1, 3), (4, 5))
        results = parallel_topk_join(coll, 3, workers=1, shards=2)
        assert len(results) == 3
        assert results[-1].similarity == 0.0

    def test_stats_are_aggregated(self, rng):
        coll = random_integer_collection(40, universe=25, max_size=7, rng=rng)
        stats = TopkStats()
        parallel_topk_join(coll, 10, workers=1, shards=3, stats=stats)
        assert stats.verifications > 0

    def test_pool_smoke(self, rng):
        coll = random_integer_collection(50, universe=25, max_size=7, rng=rng)
        results = parallel_topk_join(coll, 12, workers=2, shards=4)
        assert rounded_multiset(results) == rounded_multiset(topk_join(coll, 12))


class TestStatsMerging:
    def test_combined_sums_counters(self):
        a = TopkStats(events=3, verifications=5, candidates=7)
        b = TopkStats(events=2, verifications=1, candidates=4)
        total = TopkStats.combined([a, b])
        assert total.events == 5
        assert total.verifications == 6
        assert total.candidates == 11


class TestCli:
    def test_topk_workers_flag(self, tmp_path, capsys):
        data = tmp_path / "data.txt"
        data.write_text("a b c\na b c d\nb c d\nx y\nx y z\n", encoding="utf-8")
        code = main(["topk", "--input", str(data), "--k", "3", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3
