"""Tests for the R-S (two-collection) top-k join extension."""


import pytest

from repro import TaggedCollection, naive_topk_rs, topk_join_rs

from conftest import rounded_multiset


def random_side(rng, count, universe, max_size):
    return [
        [rng.randrange(universe) for __ in range(rng.randint(1, max_size))]
        for __ in range(count)
    ]


class TestTaggedCollection:
    def test_sides_assigned(self):
        tagged = TaggedCollection.from_integer_sets([[1, 2]], [[2, 3]])
        sides = sorted(tagged.side(rid) for rid in range(len(tagged)))
        assert sides == [0, 1]

    def test_joint_universe_from_token_lists(self):
        tagged = TaggedCollection.from_token_lists(
            [["a", "b"]], [["b", "c"]]
        )
        assert tagged.collection.universe_size == 3

    def test_identical_cross_records_kept(self):
        # No dedupe across sides: identical records are a sim-1.0 result.
        tagged = TaggedCollection.from_token_lists(
            [["x", "y"]], [["x", "y"]]
        )
        assert len(tagged) == 2
        best = topk_join_rs(tagged, 1)[0]
        assert best.similarity == pytest.approx(1.0)

    def test_empty_records_dropped(self):
        tagged = TaggedCollection.from_integer_sets([[], [1]], [[2]])
        assert len(tagged) == 2

    def test_source_ids_per_side(self):
        tagged = TaggedCollection.from_integer_sets(
            [[1], [1, 2, 3]], [[9, 10]]
        )
        for rid in range(len(tagged)):
            record = tagged.collection[rid]
            side_size = 2 if tagged.side(rid) == 0 else 1
            assert 0 <= record.source_id < side_size


class TestCorrectness:
    def test_only_cross_pairs_returned(self, rng):
        r = random_side(rng, 15, 20, 6)
        s = random_side(rng, 15, 20, 6)
        tagged = TaggedCollection.from_integer_sets(r, s)
        for result in topk_join_rs(tagged, 20):
            assert tagged.side(result.x) != tagged.side(result.y)

    def test_matches_oracle_randomized(self, rng):
        for __ in range(25):
            r = random_side(rng, rng.randint(1, 18), rng.randint(4, 25), 7)
            s = random_side(rng, rng.randint(1, 18), rng.randint(4, 25), 7)
            tagged = TaggedCollection.from_integer_sets(r, s)
            k = rng.randint(1, 12)
            got = rounded_multiset(topk_join_rs(tagged, k))
            want = rounded_multiset(naive_topk_rs(tagged, k))
            # topk_join_rs zero-pads beyond the oracle's cross pairs.
            assert got[: len(want)] == want
            assert all(value == 0.0 for value in got[len(want):])

    def test_descending_order(self, rng):
        r = random_side(rng, 20, 15, 6)
        s = random_side(rng, 20, 15, 6)
        tagged = TaggedCollection.from_integer_sets(r, s)
        values = [x.similarity for x in topk_join_rs(tagged, 15)]
        assert values == sorted(values, reverse=True)

    def test_disjoint_sides_zero_filled(self):
        tagged = TaggedCollection.from_integer_sets(
            [[1], [2]], [[10], [11]]
        )
        results = topk_join_rs(tagged, 3)
        assert len(results) == 3
        assert all(x.similarity == 0.0 for x in results)

    def test_budget_escalation_path(self, rng):
        # Many high-similarity same-side pairs force the enlarged-budget
        # retry: R records are near-identical to each other, while cross
        # similarities are low but nonzero.
        r = [[1, 2, 3, 4, i + 100] for i in range(12)]
        s = [[4, 200 + i, 300 + i] for i in range(4)]
        tagged = TaggedCollection.from_integer_sets(r, s)
        k = 10
        got = rounded_multiset(topk_join_rs(tagged, k))
        want = rounded_multiset(naive_topk_rs(tagged, k))
        assert got[: len(want)] == want
