"""Lifecycle and exactness tests for the shared-memory data plane."""

import pytest

from repro import topk_join
from repro.data import random_integer_collection
from repro.parallel import parallel_topk_join
from repro.parallel.shm import (
    ShmAttachError,
    attach_collection,
    create_segment,
    destroy_segment,
    leaked_segments,
    shm_usable,
)

from conftest import make_collection, rounded_multiset

pytestmark = pytest.mark.skipif(
    not shm_usable(), reason="no usable shared memory on this host"
)


def ordered_rows(results):
    return [(r.x, r.y, r.similarity) for r in results]


class TestSegmentLifecycle:
    def test_create_then_destroy_unlinks(self):
        coll = make_collection((1, 2, 3), (2, 3, 4), (5,))
        descriptor = create_segment(coll)
        assert descriptor.name in leaked_segments()
        destroy_segment(descriptor)
        assert descriptor.name not in leaked_segments()

    def test_destroy_is_idempotent(self):
        coll = make_collection((1, 2), (2, 3))
        descriptor = create_segment(coll)
        destroy_segment(descriptor)
        destroy_segment(descriptor)  # second unlink is a no-op

    def test_attach_after_destroy_raises_clear_error(self):
        coll = make_collection((1, 2), (2, 3))
        descriptor = create_segment(coll)
        destroy_segment(descriptor)
        with pytest.raises(ShmAttachError, match="already unlinked"):
            attach_collection(descriptor)

    def test_attach_rejects_mismatched_descriptor(self):
        from dataclasses import replace

        coll = make_collection((1, 2, 3), (2, 3, 4))
        descriptor = create_segment(coll)
        try:
            forged = replace(descriptor, records=descriptor.records + 1)
            with pytest.raises(ShmAttachError, match="disagrees"):
                attach_collection(forged)
        finally:
            destroy_segment(descriptor)

    def test_roundtrip_preserves_collection(self, rng):
        coll = random_integer_collection(40, universe=30, max_size=8, rng=rng)
        descriptor = create_segment(coll, with_signatures=True)
        try:
            attached = attach_collection(descriptor)
            twin = attached.collection
            assert len(twin) == len(coll)
            assert twin.universe_size == coll.universe_size
            for mine, theirs in zip(coll.records, twin.records):
                assert list(mine.tokens) == list(theirs.tokens)
                assert mine.source_id == theirs.source_id
            assert twin.signatures == coll.signatures
        finally:
            destroy_segment(descriptor)

    def test_empty_collection_roundtrips(self):
        coll = make_collection()
        descriptor = create_segment(coll)
        try:
            attached = attach_collection(descriptor)
            assert len(attached.collection) == 0
        finally:
            destroy_segment(descriptor)


class TestJoinLifecycle:
    """parallel_topk_join owns the segment: unlink on every exit path.

    The autouse ``no_leaked_shm_segments`` fixture re-checks after each
    test, so these assertions are intentionally redundant — they localize
    a failure to the exit path under test instead of the fixture.
    """

    def test_success_unlinks(self, rng):
        coll = random_integer_collection(30, universe=20, max_size=6, rng=rng)
        parallel_topk_join(coll, 5, workers=1, shards=4, shm=True)
        assert leaked_segments() == []

    def test_serial_task_crash_unlinks(self, rng, monkeypatch):
        coll = random_integer_collection(30, universe=20, max_size=6, rng=rng)

        def explode(task):
            raise RuntimeError("worker blew up mid-task")

        # RuntimeError on purpose: OSError would be mistaken for a
        # missing-multiprocessing environment and swallowed by the
        # pool's serial fallback.
        monkeypatch.setattr("repro.parallel.join.run_task", explode)
        with pytest.raises(RuntimeError, match="blew up"):
            parallel_topk_join(coll, 5, workers=1, shards=4, shm=True)
        assert leaked_segments() == []

    def test_pool_crash_unlinks(self, rng, monkeypatch):
        coll = random_integer_collection(30, universe=20, max_size=6, rng=rng)

        def explode(*args, **kwargs):
            raise RuntimeError("pool terminated")

        monkeypatch.setattr("repro.parallel.join._run_pool", explode)
        with pytest.raises(RuntimeError, match="pool terminated"):
            parallel_topk_join(coll, 5, workers=2, shards=4)
        assert leaked_segments() == []

    def test_keyboard_interrupt_unlinks(self, rng, monkeypatch):
        coll = random_integer_collection(30, universe=20, max_size=6, rng=rng)

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt()

        monkeypatch.setattr("repro.parallel.join._run_pool", interrupt)
        with pytest.raises(KeyboardInterrupt):
            parallel_topk_join(coll, 5, workers=2, shards=4)
        assert leaked_segments() == []


class TestExactness:
    def test_shm_rows_match_pickling_rows(self, rng):
        for __ in range(5):
            coll = random_integer_collection(
                35, universe=rng.randint(10, 30), max_size=7, rng=rng
            )
            pickled = parallel_topk_join(coll, 8, workers=1, shards=5, shm=False)
            shared = parallel_topk_join(coll, 8, workers=1, shards=5, shm=True)
            assert ordered_rows(shared) == ordered_rows(pickled)

    def test_pool_shm_matches_sequential(self, rng):
        coll = random_integer_collection(50, universe=25, max_size=7, rng=rng)
        results = parallel_topk_join(coll, 12, workers=2, shards=4, shm=True)
        assert rounded_multiset(results) == rounded_multiset(topk_join(coll, 12))

    def test_accel_off_skips_signature_encoding(self, rng):
        from repro import TopkOptions

        coll = random_integer_collection(30, universe=20, max_size=6, rng=rng)
        options = TopkOptions(accel="off")
        pickled = parallel_topk_join(
            coll, 6, options=options, workers=1, shards=4, shm=False
        )
        shared = parallel_topk_join(
            coll, 6, options=options, workers=1, shards=4, shm=True
        )
        assert ordered_rows(shared) == ordered_rows(pickled)
