"""Hypothesis property tests for the similarity functions and their bounds.

Algebraic facts the four functions must satisfy on *every* input,
including the empty set:

* symmetry: ``sim(x, y) == sim(y, x)``;
* bounds: the normalized functions live in ``[0, 1]``; overlap equals the
  intersection size exactly;
* the pointwise ordering ``jaccard <= dice <= cosine`` (from
  ``a + b - o >= (a + b) / 2 >= sqrt(ab)`` whenever ``o <= min(a, b)``);
* ``verify`` agrees with ``similarity`` whenever its result clears the
  threshold, and never misclassifies (early abort is sound);
* ``required_overlap`` is the *minimal* sufficient overlap (Eq. 1);
* prefix lengths and upper bounds are monotone the way the event loop
  assumes.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.similarity.functions import (
    Cosine,
    Dice,
    Jaccard,
    Overlap,
    similarity_by_name,
)

# Heavy Hypothesis/fuzz suite: runs in the slow CI lane.
pytestmark = pytest.mark.slow

NORMALIZED = [Jaccard(), Cosine(), Dice()]
ALL_FUNCTIONS = NORMALIZED + [Overlap()]

token_sets = st.lists(
    st.integers(min_value=0, max_value=30), max_size=12
).map(lambda tokens: tuple(sorted(set(tokens))))

thresholds = st.floats(
    min_value=0.01, max_value=1.0, allow_nan=False, exclude_min=False
)


@given(x=token_sets, y=token_sets)
@settings(max_examples=200)
def test_symmetry(x, y):
    for sim in ALL_FUNCTIONS:
        assert sim.similarity(x, y) == sim.similarity(y, x)


@given(x=token_sets, y=token_sets)
@settings(max_examples=200)
def test_bounds_and_overlap_consistency(x, y):
    overlap = len(set(x) & set(y))
    for sim in NORMALIZED:
        value = sim.similarity(x, y)
        assert 0.0 <= value <= 1.0
        if overlap == 0:
            assert value == 0.0
    assert Overlap().similarity(x, y) == float(overlap)
    # Self-similarity of a non-empty set is exactly 1 (normalized).
    if x:
        for sim in NORMALIZED:
            assert sim.similarity(x, x) == 1.0


@given(x=token_sets, y=token_sets)
@settings(max_examples=200)
def test_jaccard_dice_cosine_ordering(x, y):
    eps = 1e-12
    j = Jaccard().similarity(x, y)
    d = Dice().similarity(x, y)
    c = Cosine().similarity(x, y)
    assert j <= d + eps
    assert d <= c + eps


@given(x=token_sets, y=token_sets, t=thresholds)
@settings(max_examples=200)
def test_verify_contract(x, y, t):
    for sim in NORMALIZED:
        exact = sim.similarity(x, y)
        verified = sim.verify(x, y, t)
        if verified >= t:
            assert verified == exact
        else:
            assert exact < t


@given(x=token_sets, y=token_sets, t=thresholds)
@settings(max_examples=200)
def test_required_overlap_minimality(x, y, t):
    for sim in ALL_FUNCTIONS:
        a, b = len(x), len(y)
        alpha = sim.required_overlap(t, a, b)
        limit = min(a, b)
        assert 0 <= alpha <= limit + 1
        if alpha <= limit:
            assert sim.from_overlap(alpha, a, b) >= t
        if alpha > 0:
            assert sim.from_overlap(alpha - 1, a, b) < t


@given(size=st.integers(min_value=0, max_value=40), t=thresholds)
@settings(max_examples=200)
def test_prefix_lengths_within_range_and_monotone(size, t):
    for sim in ALL_FUNCTIONS:
        probing = sim.probing_prefix_length(size, t)
        indexing = sim.indexing_prefix_length(size, t)
        assert 0 <= indexing <= probing <= size


@given(size=st.integers(min_value=1, max_value=40))
@settings(max_examples=100)
def test_upper_bounds_monotone_in_prefix(size):
    for sim in ALL_FUNCTIONS:
        probing = [
            sim.probing_upper_bound(size, p) for p in range(1, size + 2)
        ]
        indexing = [
            sim.indexing_upper_bound(size, p) for p in range(1, size + 2)
        ]
        assert probing == sorted(probing, reverse=True)
        assert indexing == sorted(indexing, reverse=True)
        for ub_p, ub_i in zip(probing, indexing):
            assert ub_i <= ub_p + 1e-12


# ----------------------------------------------------------------------
# Empty-set boundary pinning
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", ["jaccard", "cosine", "dice", "overlap"])
def test_empty_set_boundaries(name):
    """Empty inputs score 0 (not NaN/ZeroDivisionError), and the derived
    quantities behave: a size-0 record has no prefix and cannot reach any
    positive threshold."""
    sim = similarity_by_name(name)
    assert sim.similarity((), ()) == 0.0
    assert sim.similarity((), (1, 2)) == 0.0
    assert sim.similarity((1, 2), ()) == 0.0
    assert sim.verify((), (1, 2), 0.5) < 0.5
    assert sim.probing_prefix_length(0, 0.5) == 0
    assert sim.indexing_prefix_length(0, 0.5) == 0
    assert sim.from_overlap(0, 0, 0) == 0.0
    # required_overlap on an empty side: only overlap 0 is possible, and
    # it never reaches a positive threshold -> minimal sufficient overlap
    # is the out-of-range sentinel min(a, b) + 1 == 1.
    assert sim.required_overlap(0.5, 0, 5) == 1
    assert sim.required_overlap(0.5, 0, 0) == 1
