"""Seeded-fault self-tests for every ``repro lint`` checker.

A checker that has never caught its bug class proves nothing (same
philosophy as the off-by-one bound faults in
:mod:`repro.oracle.faults`).  For each :data:`LINT_FAULTS` entry this
suite overlays the mutation onto the real, otherwise-pristine source
tree and asserts that exactly the intended checker fires, on the
mutated file — and that the pristine tree stays clean, so the firing
is attributable to the seeded fault alone.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import load_project, run_checkers
from repro.analysis.engine import checker_ids
from repro.oracle.faults import LINT_FAULTS

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def pristine_project():
    project, missing = load_project([str(SRC / "repro")], base=SRC.parent)
    assert not missing
    return project


def test_every_checker_has_a_seeded_fault():
    covered = {fault.checker for fault in LINT_FAULTS}
    assert covered == set(checker_ids())


def test_pristine_tree_is_clean(pristine_project):
    findings = run_checkers(pristine_project)
    assert findings == []


@pytest.mark.parametrize(
    "fault", LINT_FAULTS, ids=[f.description.replace(" ", "-") for f in LINT_FAULTS]
)
def test_seeded_fault_is_caught(pristine_project, fault):
    module = pristine_project.module(fault.repro_path)
    assert module is not None, fault.repro_path
    mutated = fault.apply(module.text)
    assert mutated != module.text
    project = pristine_project.with_source(fault.repro_path, mutated)

    findings = run_checkers(project, select=[fault.checker])
    assert findings, "checker %r missed seeded fault %r" % (
        fault.checker,
        fault.description,
    )
    flagged_paths = {finding.path for finding in findings}
    expected = project.module(fault.expected_path).path
    assert flagged_paths == {expected}, (
        "fault %r should only fire in %s, got %s"
        % (fault.description, expected, sorted(flagged_paths))
    )
    assert all(finding.checker == fault.checker for finding in findings)


@pytest.mark.parametrize(
    "fault", LINT_FAULTS, ids=[f.description.replace(" ", "-") for f in LINT_FAULTS]
)
def test_seeded_fault_invisible_to_other_checkers(pristine_project, fault):
    # The mutation re-introduces exactly one bug class; the remaining
    # checkers must stay quiet on it, or finding attribution is noise.
    module = pristine_project.module(fault.repro_path)
    project = pristine_project.with_source(fault.repro_path, fault.apply(module.text))
    others = [cid for cid in checker_ids() if cid != fault.checker]
    assert run_checkers(project, select=others) == []


def test_second_gen_kernel_flags_are_plumb_checked(pristine_project):
    # The second-generation kernel rides on two new TopkOptions fields;
    # the options-plumbing checker must treat both as caller-owned: a
    # parallel-layer override of sig_bits or accel (e.g. pinning
    # accel="numpy" and silently dropping accel="native") is a finding
    # that names the overridden field.
    by_description = {fault.description: fault for fault in LINT_FAULTS}
    for description, field in (
        ("worker pins sig_bits, ignoring the caller's width", "sig_bits"),
        ("parallel backend pins accel, dropping accel=native", "accel"),
    ):
        fault = by_description[description]
        module = pristine_project.module(fault.repro_path)
        project = pristine_project.with_source(
            fault.repro_path, fault.apply(module.text)
        )
        findings = run_checkers(project, select=["options-plumbing"])
        assert any(
            "TopkOptions.%s" % field in finding.message for finding in findings
        ), "options-plumbing did not name the overridden %s field" % field


def test_fault_application_is_loud_on_drift():
    fault = LINT_FAULTS[0]
    with pytest.raises(ValueError):
        fault.apply("def unrelated(): pass\n")
