"""Unit tests for repro.similarity.overlap."""

from repro.similarity.overlap import (
    overlap_size,
    overlap_with_common_positions,
    overlap_with_early_abort,
)


class TestOverlapSize:
    def test_disjoint(self):
        assert overlap_size((1, 2), (3, 4)) == 0

    def test_identical(self):
        assert overlap_size((1, 2, 3), (1, 2, 3)) == 3

    def test_partial(self):
        assert overlap_size((1, 3, 5, 7), (2, 3, 4, 7)) == 2

    def test_subset(self):
        assert overlap_size((2, 4), (1, 2, 3, 4, 5)) == 2

    def test_empty(self):
        assert overlap_size((), (1, 2)) == 0
        assert overlap_size((), ()) == 0


class TestEarlyAbort:
    def test_exact_when_reachable(self):
        assert overlap_with_early_abort((1, 2, 3), (1, 2, 3), required=2) == 3

    def test_small_when_unreachable(self):
        result = overlap_with_early_abort((1, 2), (3, 4), required=1)
        assert result < 1

    def test_required_zero_never_aborts(self):
        x, y = (1, 3, 5), (1, 2, 3)
        assert overlap_with_early_abort(x, y, required=0) == overlap_size(x, y)

    def test_abort_value_below_required(self):
        # 1 common token but 3 required: the merge must bail with < 3.
        assert overlap_with_early_abort((1, 9, 10), (1, 2, 3), required=3) < 3

    def test_boundary_required_equals_overlap(self):
        assert overlap_with_early_abort((1, 2, 4), (1, 2, 9), required=2) == 2


class TestCommonPositions:
    def test_positions_are_one_based(self):
        probe = overlap_with_common_positions((5, 7, 9), (1, 7, 9))
        assert (probe.first_x, probe.first_y) == (2, 2)
        assert (probe.second_x, probe.second_y) == (3, 3)

    def test_single_common_token(self):
        probe = overlap_with_common_positions((1, 2), (2, 3))
        assert probe.overlap == 1
        assert (probe.first_x, probe.first_y) == (2, 1)
        assert probe.second_x is None and probe.second_y is None

    def test_no_common_token(self):
        probe = overlap_with_common_positions((1,), (2,))
        assert probe.overlap == 0
        assert probe.first_x is None

    def test_aborted_flag(self):
        probe = overlap_with_common_positions((1, 9, 10), (2, 3, 4), required=3)
        assert probe.aborted

    def test_not_aborted_when_reachable(self):
        probe = overlap_with_common_positions((1, 2, 3), (1, 2, 3), required=3)
        assert not probe.aborted
        assert probe.overlap == 3

    def test_overlap_matches_plain_merge(self):
        x, y = (1, 4, 6, 8, 11), (2, 4, 8, 9, 11)
        probe = overlap_with_common_positions(x, y)
        assert probe.overlap == overlap_size(x, y) == 3
