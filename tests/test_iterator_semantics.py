"""Semantics of the progressive iterator under partial consumption."""

import pytest

from repro import TopkStats, naive_topk, topk_join_iter
from repro.data import random_integer_collection

from conftest import rounded_multiset


class TestPartialConsumption:
    def test_prefix_correct_at_every_cut(self, rng):
        coll = random_integer_collection(40, 15, 8, rng=rng)
        want = rounded_multiset(naive_topk(coll, 12))
        for cut in (1, 3, 7, 12):
            iterator = topk_join_iter(coll, 12)
            taken = []
            for result in iterator:
                taken.append(result)
                if len(taken) >= cut:
                    break
            got = rounded_multiset(taken)
            assert got == want[: len(got)]

    def test_closing_early_is_clean(self, rng):
        coll = random_integer_collection(40, 15, 8, rng=rng)
        iterator = topk_join_iter(coll, 10)
        next(iterator)
        iterator.close()  # must not raise

    def test_stats_finalized_only_on_exhaustion(self, rng):
        coll = random_integer_collection(40, 15, 8, rng=rng)
        stats = TopkStats()
        iterator = topk_join_iter(coll, 10, stats=stats)
        for __ in iterator:
            pass
        assert stats.index_inserted > 0, "finalized after exhaustion"

    def test_emits_track_partial_consumption(self, rng):
        coll = random_integer_collection(40, 15, 8, rng=rng)
        stats = TopkStats()
        iterator = topk_join_iter(coll, 10, stats=stats)
        first = next(iterator)
        assert stats.emits, "emit recorded before the yield returns"
        assert stats.emits[0].similarity == pytest.approx(first.similarity)

    def test_two_iterators_are_independent(self, rng):
        coll = random_integer_collection(40, 15, 8, rng=rng)
        a = topk_join_iter(coll, 5)
        b = topk_join_iter(coll, 5)
        first_a = next(a)
        first_b = next(b)
        assert first_a.similarity == pytest.approx(first_b.similarity)
        rest_a = rounded_multiset([first_a] + list(a))
        rest_b = rounded_multiset([first_b] + list(b))
        assert rest_a == rest_b
