"""Unit tests for the verification-dedup registry (Algorithm 6, Lemma 3)."""

import importlib
import random

import pytest

from repro import TopkOptions, topk_join
from repro.core.verification import VerificationRegistry
from repro.data import random_integer_collection
from repro.similarity import Jaccard
from repro.similarity.overlap import overlap_with_common_positions

# The package re-exports the topk_join *function* under the same dotted
# path, so fetch the module itself for monkeypatching.
topk_module = importlib.import_module("repro.core.topk_join")
# With acceleration on (the default) the merge runs inside the scan
# kernel, which binds it under a private alias — spy on both call sites.
kernel_module = importlib.import_module("repro.accel.kernel")


def probe_of(x, y, required=0):
    return overlap_with_common_positions(tuple(x), tuple(y), required)


def verified(registry, pair):
    """Membership through ``fast_set()`` — the hot loop's access path."""
    seen = registry.fast_set()
    return seen is not None and pair in seen


class TestRegistryModes:
    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            VerificationRegistry(Jaccard(), mode="bogus")

    def test_off_mode_never_remembers(self):
        registry = VerificationRegistry(Jaccard(), mode="off")
        registry.record((0, 1), probe_of((1, 2, 3), (1, 2, 4)), 3, 3, 0.0)
        assert not verified(registry, (0, 1))
        assert len(registry) == 0
        assert registry.fast_set() is None

    def test_all_mode_remembers_everything(self):
        registry = VerificationRegistry(Jaccard(), mode="all")
        registry.record((0, 1), probe_of((1,), (2,)), 1, 1, 0.0)
        assert verified(registry, (0, 1))

    def test_optimized_skips_single_common_token_pairs(self):
        registry = VerificationRegistry(Jaccard(), mode="optimized")
        # Only one common token: the pair can never be generated again.
        registry.record((0, 1), probe_of((1, 5), (1, 9)), 2, 2, 0.0)
        assert not verified(registry, (0, 1))

    def test_optimized_remembers_double_common_token_pairs(self):
        registry = VerificationRegistry(Jaccard(), mode="optimized")
        # Two common tokens within full prefixes (s_k = 0 => max prefixes).
        registry.record((0, 1), probe_of((1, 2, 9), (1, 2, 8)), 3, 3, 0.0)
        assert verified(registry, (0, 1))

    def test_optimized_ignores_second_token_beyond_max_prefix(self):
        registry = VerificationRegistry(Jaccard(), mode="optimized")
        # s_k = 0.9 on size-10 records: max prefix = 10 - 9 + 1 = 2, but the
        # second common token sits at position 3 in x.
        x = (1, 5, 7, 20, 21, 22, 23, 24, 25, 26)
        y = (1, 6, 7, 30, 31, 32, 33, 34, 35, 36)
        registry.record((0, 1), probe_of(x, y), 10, 10, 0.9)
        assert not verified(registry, (0, 1))

    def test_aborted_probe_recorded_conservatively(self):
        registry = VerificationRegistry(Jaccard(), mode="optimized")
        probe = probe_of((1, 2, 3, 4, 5), (10, 11, 12, 13, 14), required=5)
        assert probe.aborted
        registry.record((0, 1), probe, 5, 5, 0.5)
        assert verified(registry, (0, 1))

    def test_peak_tracks_maximum(self):
        registry = VerificationRegistry(Jaccard(), mode="all")
        for i in range(5):
            registry.record((0, i + 1), probe_of((1,), (1,)), 1, 1, 0.0)
        assert registry.peak_entries == 5


class TestExactOnceGuarantee:
    """Lemma 3: with the optimisation on, each pair is verified exactly once."""

    def _verified_pairs(self, monkeypatch, collection, k, mode):
        calls = []
        # Take the pristine function from its home module: when a test
        # calls this helper twice, the topk module still holds the previous
        # spy at this point.
        original = overlap_with_common_positions

        def spy(x, y, required=0, scan_x=0, scan_y=0):
            # Key on object identity: distinct records may have identical
            # token content (dedupe is off), and each record's canonical
            # token tuple is a distinct object.
            calls.append(frozenset([id(x), id(y)]))
            return original(x, y, required, scan_x, scan_y)

        monkeypatch.setattr(
            topk_module, "overlap_with_common_positions", spy
        )
        monkeypatch.setattr(kernel_module, "_merge", spy)
        options = TopkOptions(verification_mode=mode, seed_results=False)
        topk_join(collection, k, options=options)
        return calls

    def test_optimized_never_verifies_twice(self, monkeypatch):
        rng = random.Random(31)
        for trial in range(15):
            coll = random_integer_collection(
                rng.randint(5, 30), universe=rng.randint(5, 25),
                max_size=rng.randint(2, 8), rng=rng,
            )
            calls = self._verified_pairs(
                monkeypatch, coll, k=rng.randint(1, 20), mode="optimized"
            )
            assert len(calls) == len(set(calls)), "pair verified twice"

    def test_record_all_also_exact_once(self, monkeypatch):
        rng = random.Random(37)
        coll = random_integer_collection(25, universe=12, max_size=6, rng=rng)
        calls = self._verified_pairs(monkeypatch, coll, k=10, mode="all")
        assert len(calls) == len(set(calls))

    def test_off_mode_may_repeat_but_not_fewer(self, monkeypatch):
        rng = random.Random(41)
        coll = random_integer_collection(25, universe=10, max_size=6, rng=rng)
        optimized = self._verified_pairs(monkeypatch, coll, 10, "optimized")
        unprotected = self._verified_pairs(monkeypatch, coll, 10, "off")
        assert len(unprotected) >= len(optimized)

    def test_hash_smaller_with_optimization(self):
        # The point of Algorithm 6 (Fig. 3a): fewer hash entries than
        # record-all, same results.
        from repro import TopkStats, similarity_multiset

        rng = random.Random(43)
        coll = random_integer_collection(60, universe=25, max_size=8, rng=rng)
        stats_opt, stats_all = TopkStats(), TopkStats()
        a = topk_join(
            coll, 30,
            options=TopkOptions(verification_mode="optimized"),
            stats=stats_opt,
        )
        b = topk_join(
            coll, 30,
            options=TopkOptions(verification_mode="all"),
            stats=stats_all,
        )
        assert similarity_multiset(a) == similarity_multiset(b)
        assert stats_opt.hash_entries_peak <= stats_all.hash_entries_peak
