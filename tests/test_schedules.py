"""Tests for pptopk threshold schedules."""

import pytest

from repro import Jaccard, naive_topk, pptopk_join
from repro.core.pptopk import geometric_threshold_schedule
from repro.data import random_integer_collection

from conftest import rounded_multiset


class TestGeometricSchedule:
    def test_decreasing(self):
        values = list(geometric_threshold_schedule(0.9, 0.7))
        assert values == sorted(values, reverse=True)

    def test_starts_at_start(self):
        assert next(geometric_threshold_schedule(0.85, 0.5)) == pytest.approx(0.85)

    def test_terminates_at_floor(self):
        values = list(geometric_threshold_schedule(0.9, 0.5))
        assert values[-1] == pytest.approx(0.05)

    def test_ratio_validation(self):
        for ratio in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                list(geometric_threshold_schedule(0.9, ratio))

    def test_aggressive_ratio_means_more_rounds(self):
        lazy = list(geometric_threshold_schedule(0.9, 0.5))
        eager = list(geometric_threshold_schedule(0.9, 0.9))
        assert len(eager) > len(lazy)


class TestPptopkWithCustomSchedules:
    def test_geometric_schedule_correct(self, rng):
        coll = random_integer_collection(40, 15, 8, rng=rng)
        thresholds = list(geometric_threshold_schedule(0.9, 0.6))
        got = pptopk_join(coll, 8, thresholds=thresholds)
        want = naive_topk(coll, 8, similarity=Jaccard())
        assert rounded_multiset(got) == rounded_multiset(want)[: len(got)]

    def test_schedule_granularity_tradeoff(self, rng):
        # Finer schedules never return worse answers, only cost more
        # rounds.  Both must produce the same top-k multiset.
        from repro import PptopkStats

        coll = random_integer_collection(60, 15, 8, rng=rng)
        fine_stats, coarse_stats = PptopkStats(), PptopkStats()
        fine = pptopk_join(
            coll, 10,
            thresholds=list(geometric_threshold_schedule(0.95, 0.9)),
            stats=fine_stats,
        )
        coarse = pptopk_join(
            coll, 10,
            thresholds=list(geometric_threshold_schedule(0.95, 0.4)),
            stats=coarse_stats,
        )
        assert rounded_multiset(fine)[:10] == rounded_multiset(coarse)[:10]
        assert fine_stats.rounds >= coarse_stats.rounds
