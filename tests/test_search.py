"""Tests for the similarity-search module (repro.search)."""


import pytest

from repro.data import RecordCollection, random_integer_collection
from repro.search import SearchHit, SearchIndex
from repro.similarity import Cosine, Jaccard


def naive_search(collection, query, sim, query_size=None):
    size_q = query_size if query_size is not None else len(query)
    hits = []
    for record in collection:
        overlap = len(set(query) & set(record.tokens))
        hits.append(
            SearchHit(record.rid, sim.from_overlap(overlap, size_q, len(record)))
        )
    hits.sort(key=lambda hit: (-hit.similarity, hit.rid))
    return hits


@pytest.fixture
def collection(rng):
    return random_integer_collection(60, universe=30, max_size=8, rng=rng)


@pytest.fixture
def index(collection):
    return SearchIndex(collection)


class TestThresholdSearch:
    def test_matches_naive(self, collection, index, rng):
        sim = Jaccard()
        for __ in range(30):
            query = tuple(sorted(rng.sample(range(30), rng.randint(1, 8))))
            for threshold in (0.3, 0.6, 0.9):
                got = index.threshold_search(query, threshold)
                want = [
                    hit
                    for hit in naive_search(collection, query, sim)
                    if hit.similarity >= threshold
                ]
                assert got == want

    def test_sorted_descending(self, index, rng):
        query = tuple(sorted(rng.sample(range(30), 6)))
        hits = index.threshold_search(query, 0.2)
        values = [hit.similarity for hit in hits]
        assert values == sorted(values, reverse=True)

    def test_invalid_threshold(self, index):
        with pytest.raises(ValueError):
            index.threshold_search((1, 2), 0.0)

    def test_exact_duplicate_found(self):
        coll = RecordCollection.from_integer_sets([[1, 2, 3], [4, 5]])
        hits = SearchIndex(coll).threshold_search((1, 2, 3), 1.0)
        assert len(hits) == 1
        assert hits[0].similarity == pytest.approx(1.0)


class TestTopkSearch:
    def test_matches_naive(self, collection, index, rng):
        sim = Jaccard()
        for __ in range(30):
            query = tuple(sorted(rng.sample(range(30), rng.randint(1, 8))))
            k = rng.randint(1, 10)
            got = [round(h.similarity, 9) for h in index.topk_search(query, k)]
            want = [
                round(h.similarity, 9)
                for h in naive_search(collection, query, sim)[:k]
            ]
            assert got == want

    def test_cosine_variant(self, collection, rng):
        index = SearchIndex(collection, similarity=Cosine())
        sim = Cosine()
        query = tuple(sorted(rng.sample(range(30), 5)))
        got = [round(h.similarity, 9) for h in index.topk_search(query, 5)]
        want = [
            round(h.similarity, 9)
            for h in naive_search(collection, query, sim)[:5]
        ]
        assert got == want

    def test_k_larger_than_collection(self, collection, index):
        hits = index.topk_search((1, 2, 3), k=10**6)
        assert len(hits) <= len(collection)

    def test_invalid_k(self, index):
        with pytest.raises(ValueError):
            index.topk_search((1,), 0)


class TestStringQueries:
    def test_prepare_query_known_and_unknown(self):
        coll = RecordCollection.from_texts(["alpha beta", "beta gamma"])
        index = SearchIndex(coll)
        ranks, size = index.prepare_query(["beta", "nonexistent"])
        assert size == 2
        assert len(ranks) == 1

    def test_unknown_tokens_lower_similarity(self):
        coll = RecordCollection.from_texts(["alpha beta"])
        index = SearchIndex(coll)
        exact_ranks, exact_size = index.prepare_query(["alpha", "beta"])
        noisy_ranks, noisy_size = index.prepare_query(
            ["alpha", "beta", "zzz"]
        )
        exact = index.topk_search(exact_ranks, 1, query_size=exact_size)
        noisy = index.topk_search(noisy_ranks, 1, query_size=noisy_size)
        assert exact[0].similarity == pytest.approx(1.0)
        assert noisy[0].similarity == pytest.approx(2 / 3)

    def test_integer_collection_rejects_string_queries(self):
        coll = RecordCollection.from_integer_sets([[1, 2]])
        with pytest.raises(ValueError):
            SearchIndex(coll).prepare_query(["a"])
