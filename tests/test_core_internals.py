"""Adversarial tests for core internals (buffer, events, verification cache)."""


import pytest

from repro import TopkOptions, TopkStats, naive_topk, topk_join
from repro.core.events import EventQueue
from repro.core.results import TopKBuffer
from repro.core.verification import VerificationRegistry
from repro.data import RecordCollection, random_integer_collection
from repro.similarity import Jaccard
from repro.similarity.overlap import overlap_with_common_positions

from conftest import rounded_multiset


def verified(registry, pair):
    """Membership through ``fast_set()`` — the hot loop's access path."""
    seen = registry.fast_set()
    return seen is not None and pair in seen


class TestBufferEvictionEmissionInterplay:
    def test_evicted_pair_can_rejoin_with_higher_value(self):
        # A pair evicted from T is gone; a *different* pair with the same
        # similarity may enter later.  Emission must never duplicate.
        buffer = TopKBuffer(2)
        buffer.add((0, 1), 0.4)
        buffer.add((0, 2), 0.5)
        buffer.add((0, 3), 0.6)  # evicts (0, 1)
        buffer.add((0, 4), 0.7)  # evicts (0, 2)
        emitted = buffer.pop_emittable(0.0)
        assert [pair for pair, __ in emitted] == [(0, 4), (0, 3)]
        assert list(buffer.drain()) == []

    def test_emission_interleaved_with_adds(self):
        buffer = TopKBuffer(10)
        buffer.add((0, 1), 0.95)
        first = buffer.pop_emittable(0.9)
        assert [pair for pair, __ in first] == [(0, 1)]
        buffer.add((0, 2), 0.92)
        # (0,2) arrived after the earlier emission but before the bound
        # dropped below it: emitted on the next call, order preserved.
        second = buffer.pop_emittable(0.9)
        assert [pair for pair, __ in second] == [(0, 2)]

    def test_stale_desc_entries_skipped(self):
        buffer = TopKBuffer(1)
        for i in range(50):
            buffer.add((0, i + 1), i / 100)
        emitted = buffer.pop_emittable(0.0)
        assert len(emitted) == 1
        assert emitted[0][1] == pytest.approx(0.49)


class TestEventQueueEquivalence:
    def test_compressed_and_plain_cover_same_events(self):
        coll = RecordCollection.from_integer_sets(
            [[1, 2], [3, 4], [5, 6, 7], [8, 9, 10], [11, 12, 13]]
        )
        sim = Jaccard()

        def drain(compressed):
            queue = EventQueue(coll, sim, compressed=compressed)
            out = []
            while queue:
                bound, prefix, rids = queue.pop()
                for rid in rids:
                    out.append((round(bound, 12), prefix, rid))
                queue.push_next(
                    len(coll[rids[0]]), prefix, rids, cutoff=0.0
                )
            return sorted(out)

        assert drain(True) == drain(False)

    def test_events_pushed_counter(self):
        coll = RecordCollection.from_integer_sets([[1, 2], [3, 4]])
        queue = EventQueue(coll, Jaccard(), compressed=True)
        assert queue.events_pushed == 1  # one size block


class TestVerificationPrefixCache:
    def test_cache_invalidation_on_s_k_change(self):
        registry = VerificationRegistry(Jaccard())
        probe = overlap_with_common_positions((1, 2, 9), (1, 2, 8))
        registry.record((0, 1), probe, 3, 3, 0.0)
        assert verified(registry, (0, 1))
        # Higher s_k shrinks max prefixes: position-2 second token no
        # longer qualifies at s_k=0.9 (prefix length 1).
        registry_strict = VerificationRegistry(Jaccard())
        registry_strict.record((0, 1), probe, 3, 3, 0.9)
        assert not verified(registry_strict, (0, 1))

    def test_interleaved_s_k_values(self):
        # s_k is monotone non-decreasing in a real run; the prefix
        # cache must refresh when it rises and keep serving the same
        # (shrunken) prefixes for repeats at the new value.
        registry = VerificationRegistry(Jaccard())
        probe = overlap_with_common_positions((1, 2, 9), (1, 2, 8))
        registry.record((0, 1), probe, 3, 3, 0.0)
        registry.record((0, 2), probe, 3, 3, 0.0)
        registry.record((0, 3), probe, 3, 3, 0.9)
        registry.record((0, 4), probe, 3, 3, 0.9)
        assert verified(registry, (0, 1))
        assert verified(registry, (0, 2))
        assert not verified(registry, (0, 3))
        assert not verified(registry, (0, 4))


class TestAdversarialWorkloads:
    def test_all_records_identical(self):
        coll = RecordCollection.from_integer_sets(
            [[1, 2, 3]] * 10, dedupe=False
        )
        results = topk_join(coll, 45)
        assert len(results) == 45
        assert all(r.similarity == pytest.approx(1.0) for r in results)

    def test_chain_of_decreasing_similarity(self):
        # Record i shares i tokens with record i+1.
        sets = [list(range(i, i + 10)) for i in range(0, 50, 3)]
        coll = RecordCollection.from_integer_sets(sets)
        got = rounded_multiset(topk_join(coll, 10))
        want = rounded_multiset(naive_topk(coll, 10))
        assert got == want

    def test_one_giant_record(self, rng):
        sets = [[rng.randrange(40) for __ in range(4)] for __ in range(20)]
        sets.append(list(range(200)))
        coll = RecordCollection.from_integer_sets(sets, dedupe=False)
        got = rounded_multiset(topk_join(coll, 8))
        want = rounded_multiset(naive_topk(coll, 8))
        assert got == want

    def test_every_record_singleton(self):
        coll = RecordCollection.from_integer_sets(
            [[i] for i in range(12)] + [[0]], dedupe=False
        )
        results = topk_join(coll, 3)
        assert results[0].similarity == pytest.approx(1.0)
        assert results[1].similarity == 0.0

    def test_stats_sum_to_candidates(self, rng):
        coll = random_integer_collection(60, 20, 8, rng=rng)
        stats = TopkStats()
        topk_join(coll, 20, options=TopkOptions(seed_results=False),
                  stats=stats)
        accounted = (
            stats.verifications
            + stats.duplicates_skipped
            + stats.size_pruned
            + stats.bitmap_pruned
            + stats.positional_pruned
            + stats.suffix_pruned
        )
        assert accounted == stats.candidates
