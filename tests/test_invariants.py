"""The runtime invariant layer (repro.oracle.invariants)."""

from __future__ import annotations

import pytest

from conftest import make_collection
from repro.core.rs_join import TaggedCollection, topk_join_rs
from repro.core.topk_join import TopkOptions, topk_join
from repro.data.synthetic import random_integer_collection, tie_heavy_collection
from repro.oracle import (
    CheckHooks,
    InvariantViolation,
    assert_valid_topk,
    invariant_checks_enabled,
    naive_topk,
)
from repro.oracle.reference import assert_topk_equivalent
from repro.similarity.functions import Jaccard, similarity_by_name
from repro.weighted.functions import WeightedJaccard
from repro.weighted.join import weighted_topk_join
from repro.weighted.records import WeightedCollection


# ----------------------------------------------------------------------
# Enabling / zero-cost-off plumbing
# ----------------------------------------------------------------------

def test_flag_enables_checks():
    assert invariant_checks_enabled(TopkOptions(check_invariants=True))
    assert not invariant_checks_enabled(TopkOptions())


def test_env_var_enables_checks(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")
    assert invariant_checks_enabled(TopkOptions())
    monkeypatch.setenv("REPRO_CHECK", "0")
    assert not invariant_checks_enabled(TopkOptions())
    monkeypatch.setenv("REPRO_CHECK", "")
    assert not invariant_checks_enabled(TopkOptions())


def test_checked_join_matches_unchecked():
    coll = random_integer_collection(40, 30, 8, seed=5)
    plain = topk_join(coll, 8)
    checked = topk_join(coll, 8, options=TopkOptions(check_invariants=True))
    assert plain == checked


# ----------------------------------------------------------------------
# Hook-by-hook violation detection
# ----------------------------------------------------------------------

def _hooks(**kwargs) -> CheckHooks:
    return CheckHooks(Jaccard(), 2, **kwargs)


def test_event_order_violation():
    checks = _hooks()
    checks.on_pop(Jaccard().probing_upper_bound(4, 2), 2, 4, 0.0)
    with pytest.raises(InvariantViolation) as excinfo:
        checks.on_pop(1.0, 1, 4, 0.0)
    assert excinfo.value.invariant == "event-order"


def test_ub_p_violation():
    checks = _hooks()
    with pytest.raises(InvariantViolation) as excinfo:
        checks.on_pop(0.9, 1, 5, 0.0)  # true bound at prefix 1 is 1.0
    assert excinfo.value.invariant == "ub_p"


def test_s_k_monotonicity_violation():
    checks = _hooks()
    checks.on_s_k(0.5)
    checks.on_s_k(0.5)
    with pytest.raises(InvariantViolation) as excinfo:
        checks.on_s_k(0.4)
    assert excinfo.value.invariant == "s_k-monotone"


def test_verify_once_violation():
    checks = _hooks()
    checks.on_verified((1, 2))
    with pytest.raises(InvariantViolation) as excinfo:
        checks.on_verified((1, 2))
    assert excinfo.value.invariant == "verify-once"


def test_verify_once_disabled_when_dedup_off():
    checks = _hooks(dedup_active=False)
    checks.on_verified((1, 2))
    checks.on_verified((1, 2))  # duplicates expected with mode "off"


def test_ub_i_violation():
    checks = _hooks()
    # Jaccard ub_i(size=5, prefix=2) = 4/6 > 0.5: refusing to insert is wrong.
    with pytest.raises(InvariantViolation) as excinfo:
        checks.on_index_decision(0, 5, 2, 0.5, inserted=False)
    assert excinfo.value.invariant == "ub_i"


def test_stop_indexing_violation():
    checks = _hooks()
    # Stop legitimately (ub_i(5, 4) = 2/8 < 0.5)...
    checks.on_index_decision(0, 5, 4, 0.5, inserted=False)
    # ...then inserting again at an earlier prefix/lower threshold is a bug.
    with pytest.raises(InvariantViolation) as excinfo:
        checks.on_index_decision(0, 5, 2, 0.1, inserted=True)
    assert excinfo.value.invariant == "stop-indexing"


def test_emit_requires_verification():
    checks = _hooks()
    with pytest.raises(InvariantViolation) as excinfo:
        checks.on_emit((0, 1), 0.8, 0.0, progressive=True)
    assert excinfo.value.invariant == "emit-verified"


def test_emit_bound_violation_only_when_progressive():
    checks = _hooks()
    checks.on_verified((0, 1))
    checks.on_emit((0, 1), 0.3, 0.9, progressive=False)  # drain: allowed
    checks = _hooks()
    checks.on_verified((0, 1))
    with pytest.raises(InvariantViolation) as excinfo:
        checks.on_emit((0, 1), 0.3, 0.9, progressive=True)
    assert excinfo.value.invariant == "emit-bound"


def test_emit_order_violation():
    checks = _hooks()
    checks.on_verified((0, 1))
    checks.on_verified((0, 2))
    checks.on_emit((0, 1), 0.5, 0.0, progressive=False)
    with pytest.raises(InvariantViolation) as excinfo:
        checks.on_emit((0, 2), 0.6, 0.0, progressive=False)
    assert excinfo.value.invariant == "emit-order"


def test_emit_similarity_recomputation():
    coll = make_collection([0, 1], [0, 1])
    checks = CheckHooks(Jaccard(), 1, collection=coll)
    checks.on_verified((0, 1))
    with pytest.raises(InvariantViolation) as excinfo:
        checks.on_emit((0, 1), 0.5, 0.0, progressive=False)  # truly 1.0
    assert excinfo.value.invariant == "emit-similarity"


def test_cross_pair_violation():
    checks = CheckHooks(Jaccard(), 1, sides=[0, 0, 1])
    checks.on_verified((0, 1))
    with pytest.raises(InvariantViolation) as excinfo:
        checks.on_emit((0, 1), 0.5, 0.0, progressive=False)
    assert excinfo.value.invariant == "cross-pair"


# ----------------------------------------------------------------------
# Whole-join sweeps with checks on
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", ["jaccard", "cosine", "dice", "overlap"])
def test_checked_join_valid_on_adversarial_collections(name):
    sim = similarity_by_name(name)
    options = TopkOptions(check_invariants=True)
    for seed in range(6):
        coll = tie_heavy_collection(25, seed=seed)
        results = topk_join(coll, 5, similarity=sim, options=options)
        assert_valid_topk(coll, 5, results, similarity=sim)


def test_checked_join_all_option_ablations():
    coll = random_integer_collection(35, 20, 7, seed=11)
    variants = [
        TopkOptions(check_invariants=True),
        TopkOptions(
            check_invariants=True, verification_mode="all",
            compress_events=False,
        ),
        TopkOptions(
            check_invariants=True, verification_mode="off",
            compress_events=False, index_optimization=False,
            access_optimization=False, positional_filter=False,
            suffix_filter=False, seed_results=False,
        ),
    ]
    expected = naive_topk(coll, 6)
    for options in variants:
        assert_topk_equivalent(topk_join(coll, 6, options=options), expected)


def test_checked_rs_join():
    tagged = TaggedCollection.from_integer_sets(
        [[0, 1, 2], [3, 4], [0, 5]], [[0, 1], [3, 4, 5], [6]]
    )
    results = topk_join_rs(
        tagged, 4, options=TopkOptions(check_invariants=True)
    )
    assert_topk_equivalent(
        results, naive_topk(tagged.collection, 4, sides=tagged.sides)
    )


def test_checked_weighted_join():
    lists = [[0, 1, 2], [0, 1], [2, 3], [0, 1, 2], [4]]
    weighted = WeightedCollection.from_integer_sets(lists)
    checked = weighted_topk_join(
        weighted, 4, similarity=WeightedJaccard(), check_invariants=True
    )
    plain = weighted_topk_join(weighted, 4, similarity=WeightedJaccard())
    assert checked == plain
