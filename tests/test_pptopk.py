"""Tests for the pptopk baseline (Section VII-A, Table II)."""

import pytest

from repro import (
    Cosine,
    Jaccard,
    PptopkStats,
    naive_topk,
    pptopk_join,
)
from repro.core.pptopk import default_threshold_schedule
from repro.data import random_integer_collection

from conftest import make_collection, rounded_multiset


class TestSchedule:
    def test_jaccard_schedule_start_and_step(self):
        schedule = default_threshold_schedule(Jaccard())
        first = [next(schedule) for __ in range(3)]
        assert first == pytest.approx([0.95, 0.90, 0.85])

    def test_cosine_schedule_start_and_step(self):
        schedule = default_threshold_schedule(Cosine())
        first = [next(schedule) for __ in range(3)]
        assert first == pytest.approx([0.975, 0.95, 0.925])

    def test_schedule_bottoms_out_positive(self):
        values = list(default_threshold_schedule(Jaccard()))
        assert values[-1] > 0
        assert values == sorted(values, reverse=True)


class TestCorrectness:
    def test_matches_oracle_when_enough_results(self, rng):
        for __ in range(10):
            coll = random_integer_collection(30, 12, 8, rng=rng)
            k = 5
            got = pptopk_join(coll, k)
            want = naive_topk(coll, k)
            # pptopk only guarantees the top-k that clear its lowest
            # threshold; compare on the prefix it did return.
            assert rounded_multiset(got) == rounded_multiset(want)[: len(got)]

    def test_exact_match_on_similar_data(self):
        coll = make_collection(
            [1, 2, 3, 4], [1, 2, 3, 5], [1, 2, 3, 4, 5], [7, 8, 9], [7, 8, 10]
        )
        got = pptopk_join(coll, 3)
        want = naive_topk(coll, 3)
        assert rounded_multiset(got) == rounded_multiset(want)

    def test_results_sorted(self, rng):
        coll = random_integer_collection(40, 10, 8, rng=rng)
        values = [r.similarity for r in pptopk_join(coll, 10)]
        assert values == sorted(values, reverse=True)

    def test_custom_threshold_schedule(self, rng):
        coll = random_integer_collection(30, 10, 6, rng=rng)
        got = pptopk_join(coll, 5, thresholds=[0.9, 0.5, 0.1])
        want = naive_topk(coll, 5)
        assert rounded_multiset(got) == rounded_multiset(want)[: len(got)]


class TestStats:
    def test_round_results_recorded(self, rng):
        coll = random_integer_collection(50, 15, 8, rng=rng)
        stats = PptopkStats()
        pptopk_join(coll, 20, stats=stats)
        assert stats.rounds == len(stats.thresholds) == len(stats.round_results)
        assert stats.rounds >= 1

    def test_thresholds_decreasing(self, rng):
        coll = random_integer_collection(50, 15, 8, rng=rng)
        stats = PptopkStats()
        pptopk_join(coll, 20, stats=stats)
        assert stats.thresholds == sorted(stats.thresholds, reverse=True)

    def test_round_results_nondecreasing(self, rng):
        # Lower threshold => superset of results (Table II's growth).
        coll = random_integer_collection(60, 15, 8, rng=rng)
        stats = PptopkStats()
        pptopk_join(coll, 30, stats=stats)
        assert stats.round_results == sorted(stats.round_results)

    def test_last_round_reaches_k_or_schedule_floor(self, rng):
        coll = random_integer_collection(60, 15, 8, rng=rng)
        stats = PptopkStats()
        results = pptopk_join(coll, 10, stats=stats)
        assert len(results) <= 10
        if stats.round_results[-1] < 10:
            # Schedule exhausted without reaching k.
            assert stats.thresholds[-1] == pytest.approx(0.05)
