"""Unit tests for repro.joins.filters (positional + suffix filtering)."""

import random

import pytest

from repro.joins.filters import (
    positional_admits,
    positional_max_overlap,
    suffix_admits,
    suffix_hamming_lower_bound,
)
from repro.similarity import Jaccard
from repro.similarity.overlap import overlap_size


def hamming(x, y):
    return len(x) + len(y) - 2 * overlap_size(x, y)


def random_sorted(rng, max_size=14, universe=25):
    size = rng.randint(0, max_size)
    return tuple(sorted(rng.sample(range(universe), size)))


class TestPositionalMaxOverlap:
    def test_formula(self):
        # 1 + min(|x|-i, |y|-j)
        assert positional_max_overlap(10, 8, 3, 2) == 1 + min(7, 6)

    def test_last_positions(self):
        assert positional_max_overlap(5, 5, 5, 5) == 1

    def test_is_sound_upper_bound(self):
        rng = random.Random(11)
        for __ in range(300):
            x = random_sorted(rng)
            y = random_sorted(rng)
            common = sorted(set(x) & set(y))
            if not common:
                continue
            first = common[0]
            i, j = x.index(first) + 1, y.index(first) + 1
            assert overlap_size(x, y) <= positional_max_overlap(
                len(x), len(y), i, j
            )


class TestPositionalAdmits:
    def test_admits_reachable_pair(self):
        x, y = (1, 2, 3, 4), (1, 2, 3, 4)
        assert positional_admits(Jaccard(), 0.9, 4, 4, 1, 1)

    def test_prunes_hopeless_pair(self):
        # Common token at the very end: overlap can be at most 1.
        assert not positional_admits(Jaccard(), 0.9, 5, 5, 5, 5)

    def test_threshold_zero_admits_everything(self):
        assert positional_admits(Jaccard(), 0.0, 9, 2, 9, 2)

    def test_never_prunes_qualifying_pair(self):
        sim = Jaccard()
        rng = random.Random(13)
        for __ in range(400):
            x = random_sorted(rng)
            y = random_sorted(rng)
            common = sorted(set(x) & set(y))
            if not common:
                continue
            value = sim.similarity(x, y)
            first = common[0]
            i, j = x.index(first) + 1, y.index(first) + 1
            for t in (0.2, 0.5, value):
                if value >= t:
                    assert positional_admits(sim, t, len(x), len(y), i, j)

    def test_seen_overlap_loosens_filter(self):
        sim = Jaccard()
        # With a tail position but prior matches counted, it may survive.
        strict = positional_admits(sim, 0.7, 6, 6, 5, 5, seen_overlap=1)
        loose = positional_admits(sim, 0.7, 6, 6, 5, 5, seen_overlap=4)
        assert not strict and loose


class TestSuffixHammingLowerBound:
    def test_identical(self):
        x = (1, 2, 3)
        assert suffix_hamming_lower_bound(x, x, budget=10) == 0

    def test_disjoint_hits_exact_value(self):
        assert suffix_hamming_lower_bound((1, 2), (3, 4), budget=10) <= 4

    def test_empty_versus_nonempty(self):
        assert suffix_hamming_lower_bound((), (1, 2, 3), budget=10) == 3

    def test_both_empty(self):
        assert suffix_hamming_lower_bound((), (), budget=5) == 0

    @pytest.mark.parametrize("maxdepth", [1, 2, 3, 5])
    def test_never_exceeds_true_hamming(self, maxdepth):
        rng = random.Random(17)
        for __ in range(500):
            x = random_sorted(rng)
            y = random_sorted(rng)
            true = hamming(x, y)
            bound = suffix_hamming_lower_bound(
                x, y, budget=10**9, maxdepth=maxdepth
            )
            assert bound <= true

    def test_at_least_size_difference(self):
        rng = random.Random(19)
        for __ in range(200):
            x = random_sorted(rng)
            y = random_sorted(rng)
            bound = suffix_hamming_lower_bound(x, y, budget=10**9)
            assert bound >= abs(len(x) - len(y))

    def test_deeper_recursion_tightens(self):
        rng = random.Random(23)
        for __ in range(200):
            x = random_sorted(rng)
            y = random_sorted(rng)
            shallow = suffix_hamming_lower_bound(x, y, 10**9, maxdepth=1)
            deep = suffix_hamming_lower_bound(x, y, 10**9, maxdepth=6)
            assert deep >= shallow


class TestSuffixAdmits:
    def test_never_prunes_qualifying_pair(self):
        sim = Jaccard()
        rng = random.Random(29)
        checked = 0
        for __ in range(600):
            x = random_sorted(rng)
            y = random_sorted(rng)
            common = sorted(set(x) & set(y))
            if not common:
                continue
            value = sim.similarity(x, y)
            first = common[0]
            i, j = x.index(first) + 1, y.index(first) + 1
            for t in (0.2, 0.4, value):
                if value >= t:
                    checked += 1
                    for depth in (1, 2, 4):
                        assert suffix_admits(
                            sim, t, x, y, i, j, maxdepth=depth
                        )
        assert checked > 100

    def test_prunes_clear_mismatch(self):
        sim = Jaccard()
        x = (1, 10, 20, 30, 40, 50)
        y = (1, 11, 21, 31, 41, 51)
        # Only the first token matches; J = 1/11, so t=0.9 must prune.
        assert not suffix_admits(sim, 0.9, x, y, 1, 1)

    def test_threshold_zero_admits(self):
        assert suffix_admits(Jaccard(), 0.0, (1, 2), (1, 3), 1, 1)

    def test_explicit_alpha_consistent(self):
        sim = Jaccard()
        x, y = (1, 2, 3, 7, 9), (1, 2, 4, 7, 10)
        alpha = sim.required_overlap(0.6, len(x), len(y))
        assert suffix_admits(sim, 0.6, x, y, 1, 1) == suffix_admits(
            sim, 0.6, x, y, 1, 1, alpha=alpha
        )
