"""CFG / dataflow layer edge cases (``repro.analysis.dataflow``).

The flow-sensitive checkers are only as sound as the CFG builder under
them, so the tricky compilations get direct tests: ``finally`` bodies
duplicated per continuation (return vs raise), ``with`` as try/finally
around synthetic exit nodes, ``while``/``else`` with ``break``, and the
scope-pruning of comprehensions in the def/use extractors.  The tail of
the file drives the lock-discipline and kernel-parity rules that the
seeded faults cannot reach (they mutate real sources, which exhibit one
bug shape each) over small synthetic modules.
"""

import ast
import textwrap

from repro.analysis import Project, run_checkers
from repro.analysis.dataflow import (
    ALL_EDGE_KINDS,
    build_cfg,
    leak_path_exists,
    reaching_definitions,
    stmt_calls,
    stmt_defs,
    stmt_loads,
)


def fn(source: str) -> ast.FunctionDef:
    node = ast.parse(textwrap.dedent(source)).body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


def stmts_of(cfg, indices):
    return {cfg.nodes[i].stmt for i in indices}


class TestTryFinallyWithReturn:
    SOURCE = """
    def f():
        try:
            return compute()
        finally:
            cleanup()
    """

    def test_finally_is_duplicated_per_continuation(self):
        function = fn(self.SOURCE)
        cfg = build_cfg(function)
        cleanup = function.body[0].finalbody[0]
        copies = cfg.nodes_for(cleanup)
        # One copy on the return path, one on the exception path.
        assert len(copies) >= 2
        continuations = set()
        for copy in copies:
            for edge in cfg.successors(copy):
                continuations.add(edge.target)
        assert cfg.exit in continuations
        assert cfg.raise_exit in continuations

    def test_return_cannot_bypass_finally(self):
        function = fn(self.SOURCE)
        cfg = build_cfg(function)
        (return_node,) = cfg.nodes_for(function.body[0].body[0])
        cleanup_nodes = set(cfg.nodes_for(function.body[0].finalbody[0]))
        step_targets = {
            edge.target
            for edge in cfg.successors(return_node)
            if edge.kind == "step"
        }
        assert cfg.exit not in step_targets
        assert step_targets <= cleanup_nodes | {cfg.raise_exit}

    def test_always_raising_body_makes_exit_unreachable(self):
        function = fn(
            """
            def f():
                try:
                    raise ValueError("boom")
                finally:
                    cleanup()
            """
        )
        cfg = build_cfg(function)
        reachable = cfg.reachable_from(cfg.entry)
        assert cfg.raise_exit in reachable
        assert cfg.exit not in reachable
        # The finally copy on the raise path feeds the raise exit.
        cleanup_nodes = cfg.nodes_for(function.body[0].finalbody[0])
        assert any(
            edge.target == cfg.raise_exit
            for copy in cleanup_nodes
            for edge in cfg.successors(copy)
        )


class TestWithStatements:
    SOURCE = """
    def f():
        with acquire() as handle:
            use(handle)
        after()
    """

    def test_with_exit_runs_on_both_paths(self):
        function = fn(self.SOURCE)
        cfg = build_cfg(function)
        exits = cfg.nodes_with_label("with-exit")
        assert len(exits) >= 2  # normal fall-through + exception copy
        continuations = {
            edge.target for node in exits for edge in cfg.successors(node)
        }
        (after_node,) = cfg.nodes_for(function.body[1])
        assert after_node in continuations  # normal: runs after()
        assert cfg.raise_exit in continuations  # exceptional: propagates

    def test_body_exception_routes_through_with_exit(self):
        function = fn(self.SOURCE)
        cfg = build_cfg(function)
        (use_node,) = cfg.nodes_for(function.body[0].body[0])
        call_targets = {
            edge.target
            for edge in cfg.successors(use_node)
            if edge.kind == "call"
        }
        with_exits = set(cfg.nodes_with_label("with-exit"))
        assert call_targets and call_targets <= with_exits

    def test_with_binds_optional_vars(self):
        function = fn(self.SOURCE)
        assert "handle" in stmt_defs(function.body[0])


class TestWhileElse:
    def test_else_runs_on_normal_loop_exit(self):
        function = fn(
            """
            def f():
                while pending():
                    step()
                else:
                    finish()
                return 0
            """
        )
        cfg = build_cfg(function)
        loop = function.body[0]
        (test_node,) = cfg.nodes_for(loop)
        (finish_node,) = cfg.nodes_for(loop.orelse[0])
        false_edges = [
            edge for edge in cfg.successors(test_node) if edge.branch is False
        ]
        assert [edge.target for edge in false_edges] == [finish_node]

    def test_break_skips_the_else(self):
        function = fn(
            """
            def f():
                while pending():
                    break
                else:
                    finish()
                return 0
            """
        )
        cfg = build_cfg(function)
        loop = function.body[0]
        (break_node,) = cfg.nodes_for(loop.body[0])
        (finish_node,) = cfg.nodes_for(loop.orelse[0])
        (return_node,) = cfg.nodes_for(function.body[1])
        break_targets = {e.target for e in cfg.successors(break_node)}
        assert return_node in break_targets
        assert finish_node not in break_targets


class TestComprehensionScoping:
    def test_targets_do_not_bind_in_the_function(self):
        stmt = fn(
            """
            def f(xs, ys):
                totals = [x + y for x in xs for y in ys]
            """
        ).body[0]
        assert stmt_defs(stmt) == {"totals"}
        loads = stmt_loads(stmt)
        assert "x" not in loads and "y" not in loads

    def test_nested_comprehensions_are_fully_pruned(self):
        stmt = fn(
            """
            def f(rows):
                grid = [[cell(i, j) for j in row] for i, row in rows]
            """
        ).body[0]
        assert stmt_defs(stmt) == {"grid"}
        loads = stmt_loads(stmt)
        assert {"i", "j", "row"} & loads == set()

    def test_calls_inside_comprehensions_are_not_own_calls(self):
        # Scope-aware: the comprehension body runs in its own frame, so
        # its calls must not register as the statement's own (they would
        # over-block the leak query otherwise).
        stmt = fn(
            """
            def f(ts):
                names = [g(t) for t in ts]
            """
        ).body[0]
        assert stmt_calls(stmt) == []

    def test_dict_and_set_comprehensions_prune_too(self):
        stmt = fn(
            """
            def f(pairs):
                lookup = {k: v for k, v in pairs}
            """
        ).body[0]
        assert stmt_defs(stmt) == {"lookup"}


class TestReachingDefinitions:
    def test_branch_merges_both_definitions(self):
        function = fn(
            """
            def f(flag):
                x = 1
                if flag:
                    x = 2
                sink(x)
            """
        )
        cfg = build_cfg(function)
        reaching = reaching_definitions(cfg)
        (sink_node,) = cfg.nodes_for(function.body[2])
        sites = reaching.definitions_reaching(sink_node, "x")
        assert stmts_of(cfg, sites) == {function.body[0], function.body[1].body[0]}

    def test_rebinding_kills_the_older_definition(self):
        function = fn(
            """
            def f():
                x = 1
                x = 2
                sink(x)
            """
        )
        cfg = build_cfg(function)
        reaching = reaching_definitions(cfg)
        (sink_node,) = cfg.nodes_for(function.body[2])
        sites = reaching.definitions_reaching(sink_node, "x")
        assert stmts_of(cfg, sites) == {function.body[1]}

    def test_loop_carried_definitions_reach_the_exit(self):
        function = fn(
            """
            def f(items):
                total = 0
                for item in items:
                    total = total + item
                return total
            """
        )
        cfg = build_cfg(function)
        reaching = reaching_definitions(cfg)
        (return_node,) = cfg.nodes_for(function.body[2])
        sites = reaching.definitions_reaching(return_node, "total")
        assert stmts_of(cfg, sites) == {
            function.body[0],
            function.body[1].body[0],
        }


class TestLeakQuery:
    def run_query(self, source, release_index=None):
        function = fn(source)
        cfg = build_cfg(function)
        (start,) = cfg.nodes_for(function.body[0])
        blockers = set()
        if release_index is not None:
            target = function.body[release_index]
            blockers = set(cfg.nodes_for(target))
        return cfg, start, blockers

    def test_straight_line_release_blocks_the_path(self):
        cfg, start, blockers = self.run_query(
            """
            def f():
                res = acquire()
                use(res)
                release(res)
            """,
            release_index=2,
        )
        assert not leak_path_exists(
            cfg, start, "res",
            blockers, {cfg.exit, cfg.raise_exit}, ALL_EDGE_KINDS,
        )

    def test_branch_without_release_leaks(self):
        function = fn(
            """
            def f(flag):
                res = acquire()
                if flag:
                    release(res)
                done()
            """
        )
        cfg = build_cfg(function)
        (start,) = cfg.nodes_for(function.body[0])
        blockers = set(cfg.nodes_for(function.body[1].body[0]))
        assert leak_path_exists(
            cfg, start, "res",
            blockers, {cfg.exit}, ALL_EDGE_KINDS,
        )

    def test_none_guard_discharges_the_path(self):
        # `if res is not None: release(res)` — on the false branch the
        # resource is provably None, so that path holds nothing to leak.
        function = fn(
            """
            def f():
                res = acquire()
                if res is not None:
                    release(res)
            """
        )
        cfg = build_cfg(function)
        (start,) = cfg.nodes_for(function.body[0])
        blockers = set(cfg.nodes_for(function.body[1].body[0]))
        assert not leak_path_exists(
            cfg, start, "res",
            blockers, {cfg.exit, cfg.raise_exit}, ALL_EDGE_KINDS,
        )

    def test_finally_release_covers_the_exception_path(self):
        function = fn(
            """
            def f():
                res = acquire()
                try:
                    use(res)
                finally:
                    release(res)
            """
        )
        cfg = build_cfg(function)
        (start,) = cfg.nodes_for(function.body[0])
        blockers = set(cfg.nodes_for(function.body[1].finalbody[0]))
        assert not leak_path_exists(
            cfg, start, "res",
            blockers, {cfg.exit, cfg.raise_exit}, ALL_EDGE_KINDS,
        )


# ---------------------------------------------------------------------------
# Synthetic-module drives for the flow-sensitive checker rules the seeded
# faults don't reach
# ---------------------------------------------------------------------------


def findings_for(path, source, checker):
    project = Project.from_sources({path: textwrap.dedent(source)})
    return [
        finding
        for finding in run_checkers(project, select=[checker])
        if finding.checker == checker
    ]


class TestLockDisciplineRules:
    def test_inconsistent_acquisition_order(self):
        findings = findings_for(
            "repro/parallel/fake.py",
            """
            def one(a, b):
                with a.get_lock():
                    with b.get_lock():
                        a.value = 1

            def two(a, b):
                with b.get_lock():
                    with a.get_lock():
                        b.value = 2
            """,
            "lock-discipline",
        )
        assert len(findings) == 1
        assert "deadlock" in findings[0].message

    def test_consistent_order_is_clean(self):
        findings = findings_for(
            "repro/parallel/fake.py",
            """
            def one(a, b):
                with a.get_lock():
                    with b.get_lock():
                        a.value = 1

            def two(a, b):
                with a.get_lock():
                    with b.get_lock():
                        b.value = 2
            """,
            "lock-discipline",
        )
        assert findings == []

    def test_aliased_shared_write_is_flagged(self):
        findings = findings_for(
            "repro/parallel/fake.py",
            """
            _STATE = {}

            def initialize_worker(ctx):
                _STATE["ctx"] = ctx

            def task(i):
                ctx = _STATE["ctx"]
                ctx.counter = i
            """,
            "lock-discipline",
        )
        assert len(findings) == 1
        assert "task" in findings[0].message
        assert "ctx.counter" in findings[0].message

    def test_locally_built_object_write_is_clean(self):
        findings = findings_for(
            "repro/parallel/fake.py",
            """
            _STATE = {}

            def task(i):
                ctx = make_context()
                ctx.counter = i
            """,
            "lock-discipline",
        )
        assert findings == []


class TestKernelParityRules:
    def test_footprint_divergence_is_flagged(self):
        findings = findings_for(
            "repro/accel/kernel.py",
            """
            class PythonScanKernel:
                def __init__(self, options):
                    self.options = options

                def scan(self, stats):
                    options = self.options
                    stats.candidates = 1
                    stats.verifications = 1
                    if options.batch_verify:
                        pass

            class NumpyScanKernel:
                def __init__(self, options):
                    self.options = options

                def scan(self, stats):
                    options = self.options
                    stats.candidates = 1
                    if options.batch_verify:
                        pass
            """,
            "kernel-parity",
        )
        assert len(findings) == 1
        assert "NumpyScanKernel" in findings[0].message
        assert "verifications" in findings[0].message

    def test_helper_reached_through_mro_counts(self):
        # A derived kernel that reaches the base's stats writes through
        # an inherited helper has an identical footprint: no findings.
        findings = findings_for(
            "repro/accel/kernel.py",
            """
            class PythonScanKernel:
                def scan(self, stats):
                    self._account(stats)

                def _account(self, stats):
                    stats.candidates = 1

            class NumpyScanKernel(PythonScanKernel):
                def scan(self, stats):
                    self._account(stats)
            """,
            "kernel-parity",
        )
        assert findings == []

    def test_ablation_branch_dropping_accounting_is_flagged(self):
        findings = findings_for(
            "repro/accel/kernel.py",
            """
            class PythonScanKernel:
                def scan(self, stats):
                    self._process_survivors(stats)
                    self._verify_survivors_batched(stats)

                def _process_survivors(self, stats):
                    stats.verifications = 1
                    stats.duplicates_skipped = 1

                def _verify_survivors_batched(self, stats):
                    stats.verifications = 1

            class NumpyScanKernel(PythonScanKernel):
                pass
            """,
            "kernel-parity",
        )
        assert len(findings) == 1
        assert "_verify_survivors_batched" in findings[0].message
        assert "duplicates_skipped" in findings[0].message
