"""Equivalence and behaviour tests for the threshold joins.

All-Pairs, ppjoin and ppjoin+ must return exactly the result set of the
naive quadratic join on every input, for every similarity function.
"""


import pytest

from repro import (
    Cosine,
    Dice,
    Jaccard,
    JoinStats,
    Overlap,
    all_pairs_join,
    naive_threshold_join,
    ppjoin,
    ppjoin_plus,
    threshold_join,
)
from repro.data import RecordCollection, random_integer_collection

ALGORITHMS = [
    pytest.param(all_pairs_join, id="all-pairs"),
    pytest.param(ppjoin, id="ppjoin"),
    pytest.param(ppjoin_plus, id="ppjoin+"),
]
SIMS = [
    pytest.param(Jaccard(), id="jaccard"),
    pytest.param(Cosine(), id="cosine"),
    pytest.param(Dice(), id="dice"),
]


class TestEquivalenceWithNaive:
    @pytest.mark.parametrize("join", ALGORITHMS)
    @pytest.mark.parametrize("sim", SIMS)
    @pytest.mark.parametrize("threshold", [0.25, 0.5, 0.75, 0.95])
    def test_random_collections(self, join, sim, threshold, rng):
        for __ in range(12):
            coll = random_integer_collection(
                rng.randint(2, 35),
                universe=rng.randint(4, 45),
                max_size=rng.randint(1, 10),
                rng=rng,
            )
            expected = set(naive_threshold_join(coll, threshold, sim))
            actual = set(join(coll, threshold, similarity=sim))
            assert actual == expected

    @pytest.mark.parametrize("join", ALGORITHMS)
    def test_overlap_similarity_integer_thresholds(self, join, rng):
        for threshold in (1, 2, 4):
            coll = random_integer_collection(30, 20, 8, rng=rng)
            expected = set(naive_threshold_join(coll, threshold, Overlap()))
            actual = set(join(coll, threshold, similarity=Overlap()))
            assert actual == expected

    @pytest.mark.parametrize("join", ALGORITHMS)
    def test_threshold_one_finds_duplicates(self, join):
        coll = RecordCollection.from_integer_sets(
            [[1, 2, 3], [1, 2, 3], [4, 5]], dedupe=False
        )
        results = join(coll, 1.0, similarity=Jaccard())
        assert len(results) == 1
        assert results[0].similarity == pytest.approx(1.0)


class TestResultShape:
    def test_sorted_by_descending_similarity(self, rng):
        coll = random_integer_collection(30, 15, 6, rng=rng)
        results = ppjoin_plus(coll, 0.3, similarity=Jaccard())
        values = [r.similarity for r in results]
        assert values == sorted(values, reverse=True)

    def test_pairs_canonical(self, rng):
        coll = random_integer_collection(30, 15, 6, rng=rng)
        for result in all_pairs_join(coll, 0.3):
            assert result.x < result.y

    def test_no_self_pairs(self, rng):
        coll = random_integer_collection(30, 10, 6, rng=rng)
        for result in ppjoin(coll, 0.1):
            assert result.x != result.y


class TestStatsCounters:
    def test_all_pairs_counters(self, rng):
        coll = random_integer_collection(40, 12, 6, rng=rng)
        stats = JoinStats()
        results = all_pairs_join(coll, 0.5, stats=stats)
        assert stats.results == len(results)
        assert stats.verifications >= len(results)
        assert stats.candidates == stats.verifications
        assert stats.index_entries > 0

    def test_ppjoin_prunes_at_least_as_hard_as_all_pairs(self, rng):
        coll = random_integer_collection(60, 15, 8, rng=rng)
        ap, pp, ppp = JoinStats(), JoinStats(), JoinStats()
        all_pairs_join(coll, 0.5, stats=ap)
        ppjoin(coll, 0.5, stats=pp)
        ppjoin_plus(coll, 0.5, stats=ppp)
        assert pp.candidates <= ap.candidates
        assert ppp.candidates <= pp.candidates

    def test_suffix_pruning_reported_by_plus_only(self, rng):
        coll = random_integer_collection(80, 12, 10, rng=rng)
        pp, ppp = JoinStats(), JoinStats()
        ppjoin(coll, 0.6, stats=pp)
        ppjoin_plus(coll, 0.6, stats=ppp)
        assert pp.suffix_pruned == 0
        assert ppp.suffix_pruned >= 0


class TestDispatcher:
    def test_dispatch_each_algorithm(self, rng):
        coll = random_integer_collection(20, 10, 5, rng=rng)
        expected = set(naive_threshold_join(coll, 0.5, Jaccard()))
        for name in ("naive", "all-pairs", "ppjoin", "ppjoin+"):
            assert set(threshold_join(coll, 0.5, algorithm=name)) == expected

    def test_unknown_algorithm_raises(self, rng):
        coll = random_integer_collection(5, 5, 3, rng=rng)
        with pytest.raises(ValueError, match="unknown algorithm"):
            threshold_join(coll, 0.5, algorithm="quantum")


class TestEdgeCases:
    def test_empty_collection(self):
        coll = RecordCollection([], universe_size=0)
        for join in (all_pairs_join, ppjoin, ppjoin_plus):
            assert join(coll, 0.5) == []

    def test_single_record(self):
        coll = RecordCollection.from_integer_sets([[1, 2, 3]])
        assert ppjoin_plus(coll, 0.5) == []

    def test_singleton_records(self):
        coll = RecordCollection.from_integer_sets(
            [[1], [1], [2]], dedupe=False
        )
        results = ppjoin_plus(coll, 0.9)
        assert len(results) == 1
        assert results[0].similarity == pytest.approx(1.0)

    def test_maxdepth_variations_equivalent(self, rng):
        coll = random_integer_collection(40, 15, 8, rng=rng)
        expected = set(naive_threshold_join(coll, 0.4, Jaccard()))
        for depth in (1, 2, 4, 8):
            assert set(ppjoin_plus(coll, 0.4, maxdepth=depth)) == expected
