"""Auto-discovered round-trip tests for the mergeable stats classes.

The ``stats-drift`` lint rule proves ``merge_from`` *mentions* every
field; these tests prove the *arithmetic*.  Fields are enumerated with
``dataclasses.fields`` at test time, so a counter added to ``TopkStats``
tomorrow is exercised the day it lands — no test edit required:

* every int counter must sum across ``merge_from``;
* the ``emits`` trace must concatenate in merge order;
* ``combined`` over N instances must equal N sequential ``merge_from``
  calls into a fresh instance;
* the value filler fails loudly on a field type it does not know how to
  populate, so coverage cannot silently narrow when the class grows.
"""

import dataclasses

import pytest

from repro.core.metrics import EmitEvent, TopkStats


def _emit(seed: int) -> EmitEvent:
    return EmitEvent(
        index=seed,
        similarity=0.5 + (seed % 5) / 10.0,
        upper_bound=0.95,
        s_k=0.4,
        elapsed=0.001 * seed,
    )


def _int_fields():
    return [
        spec.name
        for spec in dataclasses.fields(TopkStats)
        if spec.type in ("int", int)
    ]


def _filled(salt: int) -> TopkStats:
    """A ``TopkStats`` with every field at a distinct non-default value."""
    kwargs = {}
    for offset, spec in enumerate(dataclasses.fields(TopkStats), start=1):
        if spec.type in ("int", int):
            kwargs[spec.name] = salt * 100 + offset
        elif spec.name == "emits":
            kwargs[spec.name] = [_emit(salt * 100 + offset)]
        else:
            pytest.fail(
                "don't know how to fill TopkStats.%s (type %r); extend "
                "_filled so the round-trip keeps covering every field"
                % (spec.name, spec.type)
            )
    return TopkStats(**kwargs)


class TestMergeFrom:
    def test_every_int_field_sums(self):
        a, b = _filled(1), _filled(2)
        expected = {
            name: getattr(a, name) + getattr(b, name)
            for name in _int_fields()
        }
        a.merge_from(b)
        for name in _int_fields():
            assert getattr(a, name) == expected[name], name

    def test_emits_concatenate_in_merge_order(self):
        a, b = _filled(1), _filled(2)
        first, second = a.emits[0], b.emits[0]
        a.merge_from(b)
        assert a.emits == [first, second]

    def test_source_instance_is_untouched(self):
        a, b = _filled(1), _filled(2)
        snapshot = dataclasses.asdict(b)
        a.merge_from(b)
        assert dataclasses.asdict(b) == snapshot

    def test_merge_into_default_copies_every_field(self):
        fresh, source = TopkStats(), _filled(3)
        fresh.merge_from(source)
        assert dataclasses.asdict(fresh) == dataclasses.asdict(source)

    def test_filler_leaves_no_field_at_default(self):
        # Guards the tests above against a degenerate filler: summing
        # zeros would "pass" while proving nothing.
        defaults = TopkStats()
        filled = _filled(4)
        for spec in dataclasses.fields(TopkStats):
            assert getattr(filled, spec.name) != getattr(
                defaults, spec.name
            ), spec.name


class TestCombined:
    def test_equals_sequential_merge(self):
        runs = [_filled(salt) for salt in (1, 2, 3, 4)]
        manual = TopkStats()
        for run in runs:
            manual.merge_from(run)
        assert dataclasses.asdict(TopkStats.combined(runs)) == (
            dataclasses.asdict(manual)
        )

    def test_empty_iterable_yields_defaults(self):
        assert dataclasses.asdict(TopkStats.combined([])) == (
            dataclasses.asdict(TopkStats())
        )
