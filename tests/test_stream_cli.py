"""Tests for ``repro stream`` and ``repro fuzz --stream``."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def trace_file(tmp_path):
    """The bound-relaxation trace: the expiry kills both top-2 pairs."""
    path = tmp_path / "trace.txt"
    path.write_text(
        "# relaxation trace\n"
        "+ 1 2 3\n"
        "+ 1 2 3\n"
        "+ 1 2\n"
        "-\n"
        "+ 4 5\n"
    )
    return str(path)


class TestStreamParser:
    def test_defaults(self):
        args = build_parser().parse_args(
            ["stream", "--input", "t", "--k", "5"]
        )
        assert args.window == 0
        assert args.policy == "count"
        assert args.mode == "incremental"
        assert not args.check and not args.quiet

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stream", "--input", "t", "--k", "5", "--policy", "tumble"]
            )

    def test_fuzz_stream_flag(self):
        args = build_parser().parse_args(["fuzz", "--stream"])
        assert args.stream


class TestStreamCommand:
    def test_replay_emits_deltas_and_final_topk(self, trace_file, capsys):
        assert main(
            ["stream", "--input", trace_file, "--k", "2", "--window", "3",
             "--check"]
        ) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        actions = [line.split("\t")[0] for line in lines]
        assert "enter" in actions and "leave" in actions
        assert "# final top-2" in lines
        final = lines[lines.index("# final top-2") + 1:]
        assert len(final) == 2
        assert "refills" in captured.err

    def test_stdin_replay(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("1 2 3\n2 3 4\n")
        )
        assert main(["stream", "--input", "-", "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "# final top-1" in out

    def test_dataset_file_is_an_insert_only_stream(self, tmp_path, capsys):
        data = tmp_path / "data.txt"
        data.write_text("1 2 3\n1 2 3\n7 8\n")
        assert main(
            ["stream", "--input", str(data), "--k", "2", "--quiet"]
        ) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out[0] == "# final top-2"

    def test_quiet_suppresses_deltas(self, trace_file, capsys):
        assert main(
            ["stream", "--input", trace_file, "--k", "2", "--quiet"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(
            not line.startswith(("enter", "leave")) for line in lines
        )

    def test_prom_out_writes_stream_metrics(self, trace_file, tmp_path,
                                            capsys):
        prom = tmp_path / "stream.prom"
        assert main(
            ["stream", "--input", trace_file, "--k", "2", "--window", "3",
             "--prom-out", str(prom)]
        ) == 0
        text = prom.read_text()
        assert "repro_stream_inserts_total 4" in text
        assert "repro_stream_refills_total" in text
        capsys.readouterr()

    def test_trace_prints_phase_tree_to_stderr(self, trace_file, capsys):
        assert main(
            ["stream", "--input", trace_file, "--k", "2", "--window", "3",
             "--trace"]
        ) == 0
        err = capsys.readouterr().err
        assert "stream_ingest" in err
        assert "stream_close" in err

    def test_recompute_mode_agrees_with_incremental(self, trace_file,
                                                    capsys):
        # Pairs tied at the k-th similarity are interchangeable between
        # modes, so compare the similarity multisets, not raw bytes.
        outputs = {}
        for mode in ("incremental", "recompute"):
            assert main(
                ["stream", "--input", trace_file, "--k", "2", "--window",
                 "3", "--mode", mode, "--quiet"]
            ) == 0
            lines = capsys.readouterr().out.strip().splitlines()
            outputs[mode] = [
                line.split("\t")[0] for line in lines if "\t" in line
            ]
        assert outputs["incremental"] == outputs["recompute"]

    def test_missing_input_exits_2(self, tmp_path, capsys):
        assert main(
            ["stream", "--input", str(tmp_path / "nope.txt"), "--k", "1"]
        ) == 2
        assert "repro stream" in capsys.readouterr().err

    def test_bad_event_line_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("+ 1 2\nwalrus\n")
        assert main(["stream", "--input", str(path), "--k", "1"]) == 2
        assert "line 2" in capsys.readouterr().err

    def test_non_integral_advance_under_count_exits_2(self, tmp_path,
                                                      capsys):
        path = tmp_path / "frac.txt"
        path.write_text("+ 1 2\n> 1.5\n")
        assert main(
            ["stream", "--input", str(path), "--k", "1", "--window", "2"]
        ) == 2
        assert "integral" in capsys.readouterr().err

    def test_unwritable_prom_out_exits_2(self, trace_file, tmp_path,
                                         capsys):
        target = tmp_path / "missing-dir" / "m.prom"
        assert main(
            ["stream", "--input", trace_file, "--k", "2", "--prom-out",
             str(target)]
        ) == 2
        assert "cannot write" in capsys.readouterr().err


class TestFuzzStream:
    def test_smoke_run_passes(self, tmp_path, capsys):
        assert main(
            ["fuzz", "--stream", "--seed", "1", "--iters", "8",
             "--corpus-dir", str(tmp_path)]
        ) == 0
        err = capsys.readouterr().err
        assert "stream fuzz seed=1" in err
        assert "8 iterations" in err

    def test_backend_subset(self, tmp_path, capsys):
        assert main(
            ["fuzz", "--stream", "--seed", "2", "--iters", "4",
             "--backends", "stream-incremental,stream-recompute",
             "--corpus-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()

    def test_unknown_stream_backend_exits_2(self, capsys):
        assert main(
            ["fuzz", "--stream", "--backends", "stream-walrus"]
        ) == 2
        assert "unknown backends" in capsys.readouterr().err

    def test_batch_backend_invalid_in_stream_mode(self, capsys):
        assert main(["fuzz", "--stream", "--backends", "sequential"]) == 2
        capsys.readouterr()

    def test_replay_covers_stream_corpus(self, tmp_path, capsys):
        from repro.oracle.differential import StreamCase
        from repro.oracle.fuzz import save_stream_case
        from repro.stream.events import StreamEvent

        case = StreamCase.make(
            [StreamEvent.insert([1, 2]), StreamEvent.insert([1, 2])], k=1
        )
        save_stream_case(str(tmp_path), case, [])
        assert main(
            ["fuzz", "--stream", "--replay", "--corpus-dir", str(tmp_path)]
        ) == 0
        assert "all cases pass" in capsys.readouterr().err
