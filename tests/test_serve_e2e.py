"""End-to-end tests for the ``repro serve`` daemon.

The acceptance bar: a scripted client session against a real daemon (real
sockets, real event loop) produces a delta stream **byte-identical** to
replaying the same events through an in-process engine — proven both
directly here and via the ``serve-daemon`` differential backend, which
holds the daemon against the same oracle as every other backend.
"""

from __future__ import annotations

import json
import random
import threading
from typing import List, Tuple

import pytest

from repro.core import TopkOptions
from repro.oracle.differential import (
    StreamCase,
    available_stream_backends,
    run_stream_differential,
    sockets_usable,
)
from repro.oracle.fuzz import STREAM_GENERATORS
from repro.serve import (
    InProcessDaemon,
    ServeClient,
    ServeOptions,
    delta_line,
    encode,
    open_servers,
)
from repro.stream.engine import StreamingTopkEngine

pytestmark = pytest.mark.skipif(
    not sockets_usable(), reason="cannot bind local sockets"
)


def make_engine(
    k: int = 3, window: int = 16, policy: str = "count"
) -> StreamingTopkEngine:
    return StreamingTopkEngine(
        k,
        options=TopkOptions(window_size=window, window_policy=policy),
        mode="incremental",
    )


def daemon(
    k: int = 3,
    window: int = 16,
    policy: str = "count",
    **options: object,
) -> InProcessDaemon:
    return InProcessDaemon(
        lambda: make_engine(k, window, policy), ServeOptions(**options)
    )


def reencode_push(frame: dict) -> bytes:
    """Re-encode a pushed delta frame for byte comparison to delta_line."""
    keys = ("action", "x", "y", "similarity")
    return encode({key: frame[key] for key in keys})


class TestRequestReply:
    def test_insert_query_round_trip(self):
        with daemon() as (host, port), ServeClient(host, port) as client:
            for tokens in ([1, 2, 3], [1, 2, 3], [1, 2, 4]):
                reply = client.request("insert", tokens=tokens)
                assert reply["ok"], reply
                assert reply["shed"] is False
            query = client.request("query")
            assert query["ok"]
            rows = query["results"]
            assert rows[0] == [0, 1, 1.0]
            assert query["s_k"] == pytest.approx(0.5)
            assert query["window"] == 3

    def test_insert_replies_carry_deltas(self):
        with daemon(k=1) as (host, port), ServeClient(host, port) as client:
            client.request("insert", tokens=[1, 2])
            reply = client.request("insert", tokens=[1, 2])
            actions = [d["action"] for d in reply["deltas"]]
            assert actions == ["enter"]
            assert reply["deltas"][0]["similarity"] == pytest.approx(1.0)

    def test_expire_and_advance(self):
        with daemon(k=2, window=2) as (host, port):
            with ServeClient(host, port) as client:
                client.request("insert", tokens=[1, 2])
                client.request("insert", tokens=[1, 2])
                reply = client.request("expire", count=1)
                assert reply["ok"]
                assert [d["action"] for d in reply["deltas"]] == ["leave"]
                reply = client.request("advance", amount=3.0)
                assert reply["ok"]

    def test_ping_stats_and_metrics_verbs(self):
        with daemon() as (host, port), ServeClient(host, port) as client:
            assert client.request("ping")["pong"] is True
            client.request("insert", tokens=[7, 8])
            stats = client.request("stats")["stats"]
            assert stats["accepted"] == 1
            assert stats["connections"] == 1
            assert stats["degradation"] == "reject"
            assert stats["engine"]["inserts"] == 1
            text = client.request("metrics")["text"]
            assert "repro_serve_connections_total 1" in text
            assert "repro_serve_accepted_total 1" in text
            assert "repro_stream_inserts_total 1" in text
            assert "repro_serve_request_latency_seconds_bucket" in text

    def test_http_scrape_on_same_port(self):
        with daemon() as (host, port):
            with ServeClient(host, port) as client:
                client.request("insert", tokens=[1, 2, 3])
            with ServeClient(host, port) as scraper:
                scraper.send_raw(
                    b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                raw = scraper._reader.read()
            head, __, body = raw.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.0 200 OK")
            assert b"text/plain" in head
            text = body.decode("utf-8")
            assert "repro_serve_connections_total" in text
            assert "repro_stream_inserts_total 1" in text
            assert "repro_serve_request_latency_seconds_bucket" in text

    def test_http_unknown_path_is_404(self):
        with daemon() as (host, port):
            with ServeClient(host, port) as scraper:
                scraper.send_raw(b"GET /nope HTTP/1.1\r\n\r\n")
                raw = scraper._reader.read()
            assert raw.startswith(b"HTTP/1.0 404 Not Found")


class TestSubscription:
    def test_subscriber_sees_every_delta_in_seq_order(self):
        with daemon(k=2) as (host, port):
            with ServeClient(host, port) as sub:
                assert sub.request("subscribe")["subscribed"] is True
                with ServeClient(host, port) as writer_client:
                    for tokens in ([1, 2], [1, 2], [1, 3], [2, 3]):
                        writer_client.request("insert", tokens=tokens)
                    expected: List[bytes] = []
                    for d in writer_client.request("query")["results"]:
                        del d  # query proves the engine settled
                # Drain pushes that arrived during the writer session.
                sub.request("ping")
            deltas = [
                f for f in sub.pushes if f.get("event") == "delta"
            ]
            assert deltas, "subscriber saw no deltas"
            seqs = [f["seq"] for f in deltas]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)
            assert {f["action"] for f in deltas} <= {"enter", "leave"}

    def test_unsubscribe_stops_the_stream(self):
        with daemon() as (host, port):
            with ServeClient(host, port) as sub:
                sub.request("subscribe")
                sub.request("unsubscribe")
                with ServeClient(host, port) as writer_client:
                    writer_client.request("insert", tokens=[1, 2])
                    writer_client.request("insert", tokens=[1, 2])
                sub.request("ping")
                deltas = [
                    f for f in sub.pushes if f.get("event") == "delta"
                ]
                assert deltas == []

    def test_delta_stream_matches_in_process_replay(self):
        """The byte-identity proof, scripted end to end.

        Every accepted event's deltas — both in the requester's acks and
        in the subscriber's push stream — must re-encode to the exact
        bytes an in-process engine replay produces via delta_line().
        """
        rng = random.Random(20090401)
        events: List[List[int]] = [
            sorted(rng.sample(range(12), rng.randint(1, 5)))
            for __ in range(30)
        ]
        expected: List[bytes] = []
        with make_engine(k=3, window=8) as engine:
            for tokens in events:
                expected.extend(
                    delta_line(d) for d in engine.insert(tokens)
                )
            final = [
                [r.x, r.y, r.similarity] for r in engine.results()
            ]
        with daemon(k=3, window=8, ingest_delay=0.001) as (host, port):
            with ServeClient(host, port) as sub:
                sub.request("subscribe")
                got_acks: List[bytes] = []
                with ServeClient(host, port) as writer_client:
                    for tokens in events:
                        reply = writer_client.request(
                            "insert", tokens=tokens
                        )
                        got_acks.extend(
                            reencode_push(d) for d in reply["deltas"]
                        )
                    rows = writer_client.request("query")["results"]
                sub.request("ping")
                pushed = [
                    reencode_push(f)
                    for f in sub.pushes
                    if f.get("event") == "delta"
                ]
        assert got_acks == expected
        assert pushed == expected
        assert rows == final


class TestDifferentialBackend:
    def test_backend_registered(self):
        assert "serve-daemon" in available_stream_backends()

    def test_generated_cases_both_policies(self):
        """Seeded fuzz cases through the daemon vs the in-process oracle.

        run_stream_differential spins a daemon per case, drives the event
        list through a scripted session, and byte-compares every delta
        (per-request acks AND the subscriber push stream) against
        delta_line() of an in-process replay.
        """
        rng = random.Random(777)
        names = sorted(STREAM_GENERATORS)
        for i in range(12):
            case = STREAM_GENERATORS[names[i % len(names)]](rng)
            failures = run_stream_differential(
                case, backends=["serve-daemon"]
            )
            assert failures == [], "\n".join(failures)

    def test_handcrafted_case_with_expire_and_advance(self):
        from repro.stream.events import StreamEvent

        case = StreamCase.make(
            [
                StreamEvent.insert([1, 2, 3]),
                StreamEvent.insert([1, 2, 3]),
                StreamEvent.insert([]),
                StreamEvent.expire(1),
                StreamEvent.advance(2.0),
                StreamEvent.insert([1, 2]),
            ],
            k=2,
            window=4,
        )
        failures = run_stream_differential(
            case, backends=["serve-daemon"]
        )
        assert failures == [], "\n".join(failures)


class TestEngineSubscription:
    """The engine-side hook the daemon's broadcast is built on."""

    def test_subscribe_delivers_deltas_and_unsubscribes(self):
        seen: List[Tuple[str, int, int]] = []
        with make_engine(k=1) as engine:
            cancel = engine.subscribe(
                lambda deltas: seen.extend(
                    (d.action, d.x, d.y) for d in deltas
                )
            )
            engine.insert([1, 2])
            engine.insert([1, 2])
            assert seen == [("enter", 0, 1)]
            cancel()
            engine.insert([1, 2])
            assert seen == [("enter", 0, 1)]

    def test_no_callback_for_empty_delta_batches(self):
        calls: List[int] = []
        with make_engine(k=1) as engine:
            engine.subscribe(lambda deltas: calls.append(len(deltas)))
            engine.insert([1])  # no pairs yet, no deltas
            assert calls == []


class TestHarnessHygiene:
    def test_no_servers_or_daemon_threads_leak(self):
        with daemon() as (host, port):
            with ServeClient(host, port) as client:
                client.request("insert", tokens=[1, 2])
            assert open_servers() == ["%s:%d" % (host, port)]
        assert open_servers() == []
        names = [t.name for t in threading.enumerate()]
        assert "repro-serve-daemon" not in names

    def test_client_buffers_pipelined_replies(self):
        with daemon() as (host, port), ServeClient(host, port) as client:
            client.send_raw(
                json.dumps({"verb": "ping", "id": 900}).encode() + b"\n"
            )
            reply = client.request("ping")
            assert reply["pong"] is True
            assert any(f.get("id") == 900 for f in client.pushes)
