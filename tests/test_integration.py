"""End-to-end integration tests on paper-like workloads.

These run the full pipeline — synthetic corpus, canonicalization, all join
algorithms — at small scale, cross-checking every algorithm against every
other and against the exhaustive oracle.
"""

import pytest

from repro import (
    Cosine,
    Jaccard,
    PptopkStats,
    TopkStats,
    naive_threshold_join,
    naive_topk,
    ppjoin_plus,
    pptopk_join,
    threshold_join,
    topk_join,
)
from repro.data import RecordCollection, dblp_like, trec3_like, trec_like

from conftest import rounded_multiset


@pytest.fixture(scope="module")
def dblp():
    return dblp_like(250, seed=5)


@pytest.fixture(scope="module")
def trec():
    return trec_like(80, seed=5)


@pytest.fixture(scope="module")
def trec3():
    return trec3_like(50, seed=5)


class TestDblpWorkload:
    def test_topk_matches_oracle(self, dblp):
        got = rounded_multiset(topk_join(dblp, 40))
        want = rounded_multiset(naive_topk(dblp, 40))
        assert got == want

    def test_pptopk_agrees(self, dblp):
        got = pptopk_join(dblp, 20)
        want = naive_topk(dblp, 20)
        assert rounded_multiset(got) == rounded_multiset(want)[: len(got)]

    def test_threshold_joins_agree(self, dblp):
        expected = set(naive_threshold_join(dblp, 0.7))
        for algorithm in ("all-pairs", "ppjoin", "ppjoin+"):
            assert set(threshold_join(dblp, 0.7, algorithm=algorithm)) == expected

    def test_near_duplicates_found(self, dblp):
        best = topk_join(dblp, 1)[0]
        assert best.similarity > 0.5


class TestTrecWorkload:
    def test_topk_matches_oracle(self, trec):
        got = rounded_multiset(topk_join(trec, 25))
        want = rounded_multiset(naive_topk(trec, 25))
        assert got == want

    def test_long_records_suffix_depths(self, trec):
        want = rounded_multiset(naive_topk(trec, 15))
        for depth in (1, 2, 4):
            from repro import TopkOptions

            got = rounded_multiset(
                topk_join(trec, 15, options=TopkOptions(maxdepth=depth))
            )
            assert got == want


class TestQgramWorkload:
    def test_cosine_topk_matches_oracle(self, trec3):
        got = rounded_multiset(topk_join(trec3, 10, similarity=Cosine()))
        want = rounded_multiset(naive_topk(trec3, 10, similarity=Cosine()))
        assert got == want

    def test_ppjoin_plus_on_qgrams(self, trec3):
        threshold = 0.7
        got = set(ppjoin_plus(trec3, threshold, maxdepth=4))
        want = set(naive_threshold_join(trec3, threshold))
        assert got == want


class TestInstrumentationConsistency:
    def test_topk_counters_consistent(self, dblp):
        stats = TopkStats()
        results = topk_join(dblp, 30, stats=stats)
        assert len(results) == 30
        # Every verification came from a candidate or a seed.
        assert stats.verifications <= stats.candidates + 20000
        # Pruning + duplicates + verifications account for all candidates.
        accounted = (
            stats.duplicates_skipped
            + stats.size_pruned
            + stats.positional_pruned
            + stats.suffix_pruned
        )
        assert accounted <= stats.candidates
        assert stats.index_deleted <= stats.index_inserted

    def test_pptopk_candidates_accumulate(self, dblp):
        stats = PptopkStats()
        pptopk_join(dblp, 20, stats=stats)
        assert stats.candidates >= stats.round_results[-1]


class TestTextPipeline:
    def test_real_text_end_to_end(self):
        texts = [
            "the quick brown fox jumps over the lazy dog",
            "the quick brown fox jumped over the lazy dog",
            "a quick brown fox jumps over a lazy dog",
            "lorem ipsum dolor sit amet",
            "lorem ipsum dolor sit amet consectetur",
            "completely unrelated sentence here",
        ]
        collection = RecordCollection.from_texts(texts)
        results = topk_join(collection, 3, similarity=Jaccard())
        assert results[0].similarity > 0.6
        got = rounded_multiset(results)
        want = rounded_multiset(naive_topk(collection, 3))
        assert got == want

    def test_qgram_text_pipeline(self):
        texts = ["abcdefghij", "abcdefghix", "zzzzzzzzzz", "abcdefghij!"]
        collection = RecordCollection.from_qgrams(texts, q=3)
        best = topk_join(collection, 1)[0]
        assert best.similarity > 0.5
