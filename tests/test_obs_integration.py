"""End-to-end: tracing observes the join stack without changing it."""

import time

import pytest

from repro.core.metrics import JoinStats, TopkStats
from repro.core.rs_join import TaggedCollection, topk_join_rs
from repro.core.topk_join import TopkOptions, topk_join
from repro.data.records import RecordCollection
from repro.joins.ppjoin import ppjoin
from repro.obs import SamplingProfiler, Tracer, maybe_profile
from repro.parallel.join import parallel_topk_join

RECORDS = [
    (1, 2, 3, 4),
    (1, 2, 3, 5),
    (1, 2, 3, 4, 5),
    (2, 3, 4, 6),
    (7, 8, 9),
    (7, 8, 10),
    (7, 9, 10, 11),
    (1, 5, 8, 12),
    (3, 4, 5, 13),
    (2, 6, 9, 14),
]


def _collection():
    return RecordCollection.from_integer_sets(RECORDS, dedupe=False)


def _rows(results):
    return [(r.x, r.y, r.similarity) for r in results]


class TestSequentialTracing:
    def test_results_identical_and_phases_present(self):
        collection = _collection()
        plain = topk_join(collection, 6, options=TopkOptions())
        tracer = Tracer()
        stats = TopkStats()
        traced = topk_join(
            collection, 6, options=TopkOptions(trace=tracer), stats=stats
        )
        assert _rows(traced) == _rows(plain)
        names = {s.name for s in tracer.spans}
        assert {"topk_join", "seed", "event_loop", "drain"} <= names
        counters = {c.name: c.value for c in tracer.metrics.counters()}
        assert counters["repro_events_total"] == stats.events
        assert counters["repro_results_emitted_total"] == len(stats.emits)

    def test_kernel_micro_phase_recorded(self):
        tracer = Tracer()
        topk_join(_collection(), 4, options=TopkOptions(trace=tracer, accel="python"))
        phases = tracer.phase_times()
        assert "kernel_scan" in phases
        total, count = phases["kernel_scan"]
        assert count >= 1 and total >= 0.0

    def test_runtime_gauges_published(self):
        tracer = Tracer()
        topk_join(_collection(), 4, options=TopkOptions(trace=tracer))
        gauges = {g.name: g for g in tracer.metrics.gauges()}
        assert gauges["repro_heap_size_peak"].value > 0
        assert gauges["repro_s_k"].mode == "max"
        assert 0.0 <= gauges["repro_s_k"].value <= 1.0
        assert "repro_hash_entries_live" in gauges
        assert "repro_index_entries_live" in gauges


class TestParallelTracing:
    def test_worker_spans_merge_at_the_parent(self):
        collection = _collection()
        plain = parallel_topk_join(
            collection, 6, options=TopkOptions(), workers=1, shards=3
        )
        tracer = Tracer()
        stats = TopkStats()
        traced = parallel_topk_join(
            collection,
            6,
            options=TopkOptions(trace=tracer),
            workers=1,
            shards=3,
            stats=stats,
        )
        assert _rows(traced) == _rows(plain)
        names = [s.name for s in tracer.spans]
        assert "parallel_topk_join" in names
        task_count = sum(1 for name in names if name.startswith("task-"))
        assert task_count > 0
        # every task subtree carries a full join lifecycle
        assert names.count("topk_join") == task_count
        counters = {c.name: c.value for c in tracer.metrics.counters()}
        assert counters["repro_events_total"] == stats.events

    def test_multiprocess_workers_ship_trace_payloads(self):
        tracer = Tracer()
        parallel_topk_join(
            _collection(), 4, options=TopkOptions(trace=tracer), workers=2, shards=2
        )
        names = [s.name for s in tracer.spans]
        assert any(name.startswith("task-") for name in names)
        assert "topk_join" in names


class TestOtherBackends:
    def test_rs_join_traced(self):
        tagged = TaggedCollection.from_integer_sets(RECORDS[::2], RECORDS[1::2])
        plain = topk_join_rs(tagged, 4, options=TopkOptions())
        tracer = Tracer()
        traced = topk_join_rs(tagged, 4, options=TopkOptions(trace=tracer))
        assert _rows(traced) == _rows(plain)
        names = {s.name for s in tracer.spans}
        assert "topk_join_rs" in names and "topk_join" in names

    def test_ppjoin_traced(self):
        collection = _collection()
        plain = ppjoin(collection, 0.5)
        tracer = Tracer()
        stats = JoinStats()
        traced = ppjoin(collection, 0.5, stats=stats, tracer=tracer)
        assert _rows(traced) == _rows(plain)
        assert any(s.name == "ppjoin" for s in tracer.spans)
        counters = {c.name: c.value for c in tracer.metrics.counters()}
        assert counters["repro_threshold_results_total"] == len(traced)
        assert counters["repro_threshold_candidates_total"] == stats.candidates


class TestProfiler:
    def test_profiler_charges_open_spans(self):
        tracer = Tracer()
        profiler = SamplingProfiler(tracer, interval=0.001)
        profiler.start()
        with tracer.span("busy"):
            time.sleep(0.05)
        samples = profiler.stop()
        assert samples
        assert tracer.profile_samples.get("busy", 0) >= 1

    def test_maybe_profile_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        with maybe_profile(Tracer()) as profiler:
            assert profiler is None

    def test_maybe_profile_respects_the_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        tracer = Tracer()
        with maybe_profile(tracer, interval=0.001) as profiler:
            assert profiler is not None
            with tracer.span("busy"):
                time.sleep(0.02)
        assert tracer.profile_samples

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(Tracer(), interval=0.0)
