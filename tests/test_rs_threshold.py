"""Tests for threshold R-S joins (repro.joins.rs)."""

import pytest

from repro import Cosine, Jaccard, JoinStats, TaggedCollection
from repro.data import RecordCollection
from repro.joins.rs import threshold_join_rs, threshold_join_tagged
from repro.similarity import SimilarityFunction


def naive_rs(left, right, threshold, sim: SimilarityFunction):
    results = []
    for r in left:
        for s in right:
            value = sim.similarity(r.tokens, s.tokens)
            if value >= threshold:
                results.append((r.rid, s.rid, round(value, 9)))
    return sorted(results)


def build(rng, count, universe, max_size):
    sets = [
        [rng.randrange(universe) for __ in range(rng.randint(1, max_size))]
        for __ in range(count)
    ]
    return RecordCollection.from_integer_sets(sets, dedupe=False)


class TestThresholdJoinRS:
    @pytest.mark.parametrize("sim", [Jaccard(), Cosine()],
                             ids=lambda s: s.name)
    @pytest.mark.parametrize("threshold", [0.3, 0.5, 0.8])
    def test_matches_naive(self, sim, threshold, rng):
        for __ in range(10):
            left = build(rng, rng.randint(1, 25), 20, 8)
            right = build(rng, rng.randint(1, 25), 20, 8)
            got = sorted(
                (pair.x, pair.y, round(pair.similarity, 9))
                for pair in threshold_join_rs(
                    left, right, threshold, similarity=sim
                )
            )
            assert got == naive_rs(left, right, threshold, sim)

    def test_result_sides(self, rng):
        left = build(rng, 10, 15, 6)
        right = build(rng, 12, 15, 6)
        for pair in threshold_join_rs(left, right, 0.3):
            assert 0 <= pair.x < len(left)
            assert 0 <= pair.y < len(right)

    def test_swapped_sizes_consistent(self, rng):
        # The implementation indexes the smaller side; answers must not
        # depend on which side is bigger.
        small = build(rng, 5, 12, 5)
        big = build(rng, 30, 12, 5)
        a = {(p.x, p.y) for p in threshold_join_rs(small, big, 0.4)}
        b = {(p.y, p.x) for p in threshold_join_rs(big, small, 0.4)}
        assert a == b

    def test_invalid_threshold(self, rng):
        left = build(rng, 2, 5, 3)
        with pytest.raises(ValueError):
            threshold_join_rs(left, left, 0.0)

    def test_empty_side(self):
        empty = RecordCollection([], universe_size=0)
        other = RecordCollection.from_integer_sets([[1, 2]])
        assert threshold_join_rs(empty, other, 0.5) == []
        assert threshold_join_rs(other, empty, 0.5) == []

    def test_stats_populated(self, rng):
        left = build(rng, 20, 10, 6)
        right = build(rng, 20, 10, 6)
        stats = JoinStats()
        results = threshold_join_rs(left, right, 0.4, stats=stats)
        assert stats.results == len(results)
        assert stats.index_entries > 0


class TestThresholdJoinTagged:
    def test_cross_pairs_only(self, rng):
        r = [[rng.randrange(15) for __ in range(4)] for __ in range(15)]
        s = [[rng.randrange(15) for __ in range(4)] for __ in range(15)]
        tagged = TaggedCollection.from_integer_sets(r, s)
        for pair in threshold_join_tagged(tagged, 0.4):
            assert tagged.side(pair.x) != tagged.side(pair.y)

    def test_agrees_with_direct_rs_join(self, rng):
        # Same universe on both sides so ranks align across constructions.
        r = [[rng.randrange(12) for __ in range(rng.randint(1, 5))]
             for __ in range(12)]
        s = [[rng.randrange(12) for __ in range(rng.randint(1, 5))]
             for __ in range(12)]
        tagged = TaggedCollection.from_integer_sets(r, s)
        got = sorted(
            round(pair.similarity, 9)
            for pair in threshold_join_tagged(tagged, 0.5)
        )
        left = RecordCollection.from_integer_sets(r, dedupe=False)
        right = RecordCollection.from_integer_sets(s, dedupe=False)
        want = sorted(
            round(pair.similarity, 9)
            for pair in threshold_join_rs(left, right, 0.5)
        )
        assert got == want
