"""Replay the committed regression corpus: every shrunk bug stays fixed."""

from __future__ import annotations

import glob
import os

import pytest

from repro.oracle.differential import run_differential
from repro.oracle.fuzz import load_corpus_case, replay_corpus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

_CASES = sorted(glob.glob(os.path.join(CORPUS_DIR, "case_*.json")))


def test_corpus_is_not_empty():
    """The corpus ships with at least the seed-verification regression."""
    assert _CASES, "tests/corpus/ must contain at least one case"


@pytest.mark.parametrize(
    "path", _CASES, ids=[os.path.basename(p) for p in _CASES]
)
def test_corpus_case_passes(path):
    case, document = load_corpus_case(path)
    assert document.get("failures"), "corpus cases must document what failed"
    failures = run_differential(case)
    assert failures == [], "\n".join(
        ["regression reopened (%s):" % document.get("description", "?")]
        + failures
    )


def test_replay_corpus_end_to_end():
    assert replay_corpus(CORPUS_DIR) == []
