"""Replay the committed regression corpus: every shrunk bug stays fixed."""

from __future__ import annotations

import glob
import os

import pytest

from repro.oracle.differential import (
    run_differential,
    run_stream_differential,
)
from repro.oracle.fuzz import (
    load_corpus_case,
    load_stream_case,
    replay_corpus,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

_CASES = sorted(glob.glob(os.path.join(CORPUS_DIR, "case_*.json")))
_STREAM_CASES = sorted(glob.glob(os.path.join(CORPUS_DIR, "stream_*.json")))


def test_corpus_is_not_empty():
    """The corpus ships with at least the seed-verification regression."""
    assert _CASES, "tests/corpus/ must contain at least one case"


def test_stream_corpus_is_not_empty():
    """At least the bound-relaxation trace must be committed."""
    assert _STREAM_CASES, "tests/corpus/ must contain a stream trace"


@pytest.mark.parametrize(
    "path", _CASES, ids=[os.path.basename(p) for p in _CASES]
)
def test_corpus_case_passes(path):
    case, document = load_corpus_case(path)
    assert document.get("failures"), "corpus cases must document what failed"
    failures = run_differential(case)
    assert failures == [], "\n".join(
        ["regression reopened (%s):" % document.get("description", "?")]
        + failures
    )


@pytest.mark.parametrize(
    "path", _STREAM_CASES, ids=[os.path.basename(p) for p in _STREAM_CASES]
)
def test_stream_corpus_case_passes(path):
    case, document = load_stream_case(path)
    assert document.get("description"), (
        "stream corpus cases must describe what they pin down"
    )
    failures = run_stream_differential(case)
    assert failures == [], "\n".join(
        ["regression reopened (%s):" % document.get("description", "?")]
        + failures
    )


def test_replay_corpus_end_to_end():
    assert replay_corpus(CORPUS_DIR) == []
