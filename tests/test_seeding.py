"""Tests for temporary-result initialization (Section V-B)."""

from repro.core.results import TopKBuffer
from repro.core.seeding import choose_seed_token, seed_temporary_results
from repro.core.verification import VerificationRegistry
from repro.data import RecordCollection
from repro.similarity import Jaccard


def collection_with_shared_token(holders: int, total: int):
    sets = []
    for i in range(holders):
        sets.append([0, 100 + i, 200 + i])
    for i in range(holders, total):
        sets.append([300 + i, 400 + i, 500 + i])
    return RecordCollection.from_integer_sets(sets)


class TestChooseSeedToken:
    def test_prefers_band_token(self):
        # Token 1 has df 12 (inside [10, 100]); token 2 has df 3.
        frequencies = {1: 12, 2: 3, 3: 500}
        assert choose_seed_token(frequencies, k=5) == 1

    def test_requires_enough_pairs(self):
        # df 4 yields 6 pairs < k=10; df 20 yields 190 >= 10.
        frequencies = {1: 4, 2: 20}
        assert choose_seed_token(frequencies, k=10) == 2

    def test_smallest_qualifying_df_wins(self):
        frequencies = {7: 50, 8: 12, 9: 30}
        assert choose_seed_token(frequencies, k=5) == 8

    def test_fallback_outside_band(self):
        frequencies = {1: 200, 2: 300}
        assert choose_seed_token(frequencies, k=5) == 1

    def test_none_when_no_token_supplies_k(self):
        assert choose_seed_token({1: 2, 2: 3}, k=100) is None

    def test_empty_frequencies(self):
        assert choose_seed_token({}, k=1) is None


class TestSeedTemporaryResults:
    def test_buffer_filled_from_shared_token(self):
        coll = collection_with_shared_token(holders=12, total=20)
        buffer = TopKBuffer(5)
        registry = VerificationRegistry(Jaccard())
        verified = seed_temporary_results(coll, Jaccard(), buffer, registry)
        assert verified > 0
        assert len(buffer) == 5
        assert buffer.s_k > 0.0

    def test_no_seed_token_is_noop(self):
        coll = collection_with_shared_token(holders=2, total=4)
        buffer = TopKBuffer(50)
        registry = VerificationRegistry(Jaccard())
        assert seed_temporary_results(coll, Jaccard(), buffer, registry) in (0, 1)

    def test_seeded_pairs_marked_verified(self):
        coll = collection_with_shared_token(holders=12, total=15)
        buffer = TopKBuffer(5)
        registry = VerificationRegistry(Jaccard(), mode="all")
        seed_temporary_results(coll, Jaccard(), buffer, registry)
        assert len(registry) > 0
