"""Graceful shutdown of the real ``repro serve`` subprocess.

SIGTERM mid-stream must: stop accepting, drain the ingestion queue,
flush every accepted event's deltas to subscribers, emit the farewell
``{"event": "shutdown"}`` frame, close the engine, and exit 0.  The
sanitizer variant re-runs the flow under ``REPRO_SANITIZE=1`` and
requires a clean segment/lock ledger in the daemon process.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

import pytest

from repro.core import TopkOptions
from repro.oracle.differential import sockets_usable
from repro.serve import delta_line
from repro.stream.engine import StreamingTopkEngine

pytestmark = pytest.mark.skipif(
    not sockets_usable(), reason="cannot bind local sockets"
)

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def spawn_daemon(
    *extra: str, env_overrides: Optional[Dict[str, str]] = None
) -> Tuple[subprocess.Popen, str, int]:
    """Start ``repro serve`` on an ephemeral port; parse the address."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env.setdefault("PYTHONUNBUFFERED", "1")
    if env_overrides:
        env.update(env_overrides)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--k", "3", "--window", "8",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    assert proc.stderr is not None
    line = proc.stderr.readline().decode("utf-8")
    if not line.startswith("# serving on "):
        proc.kill()
        rest = proc.stderr.read().decode("utf-8", "replace")
        raise AssertionError("daemon did not start: %r" % (line + rest))
    host, port = line.strip().split()[-1].rsplit(":", 1)
    return proc, host, int(port)


def finish(proc: subprocess.Popen) -> Tuple[int, str]:
    out, err = proc.communicate(timeout=30)
    del out
    return proc.returncode, err.decode("utf-8", "replace")


class TestSigtermMidStream:
    def test_flushes_deltas_then_farewell_then_eof(self):
        events = [[1, 2, 3, i] for i in range(8)]
        proc, host, port = spawn_daemon("--ingest-delay", "0.02")
        try:
            sub = socket.create_connection((host, port), timeout=15)
            sub_reader = sub.makefile("rb")
            sub.sendall(b'{"verb":"subscribe","id":1}\n')
            hello = json.loads(sub_reader.readline())
            assert hello["ok"] and hello["subscribed"]

            producer = socket.create_connection((host, port), timeout=15)
            for i, tokens in enumerate(events):
                producer.sendall(
                    json.dumps(
                        {"verb": "insert", "id": i, "tokens": tokens}
                    ).encode("utf-8")
                    + b"\n"
                )
            # SIGTERM while the writer still has queued events: the
            # 0.02s apply delay guarantees the queue is non-empty.
            time.sleep(0.03)
            proc.send_signal(signal.SIGTERM)

            frames: List[Dict[str, Any]] = []
            while True:
                line = sub_reader.readline()
                if not line:
                    break  # clean EOF after the farewell
                frames.append(json.loads(line))
            sub.close()
            producer.close()
        finally:
            code, err = finish(proc)

        assert code == 0, err
        assert frames, "subscriber saw nothing"
        assert frames[-1] == {
            "event": "shutdown", "seq": frames[-1]["seq"],
        }
        deltas = [f for f in frames if f.get("event") == "delta"]
        assert deltas, "no deltas flushed before the farewell"
        seqs = [f["seq"] for f in frames if "seq" in f]
        assert seqs == sorted(seqs)

        # Byte-identity for the accepted prefix: the daemon reports how
        # many inserts it accepted; replaying exactly those in-process
        # must reproduce the subscriber's delta stream byte for byte.
        match = re.search(r"\((\d+) accepted", err)
        assert match is not None, err
        accepted = int(match.group(1))
        assert 0 < accepted <= len(events)
        expected: List[bytes] = []
        with StreamingTopkEngine(
            3, options=TopkOptions(window_size=8), mode="incremental"
        ) as oracle:
            for tokens in events[:accepted]:
                expected.extend(
                    delta_line(d) for d in oracle.insert(tokens)
                )
        keys = ("action", "x", "y", "similarity")
        got = [
            json.dumps(
                {k: f[k] for k in keys},
                separators=(",", ":"),
                sort_keys=True,
            ).encode("utf-8")
            + b"\n"
            for f in deltas
        ]
        assert got == expected
        assert "# served" in err

    def test_sigterm_with_no_clients_exits_zero(self):
        proc, host, port = spawn_daemon()
        del host, port
        proc.send_signal(signal.SIGTERM)
        code, err = finish(proc)
        assert code == 0, err
        assert "# served 0 request(s)" in err

    def test_remote_shutdown_verb_drains_and_exits_zero(self):
        proc, host, port = spawn_daemon()
        try:
            client = socket.create_connection((host, port), timeout=15)
            reader = client.makefile("rb")
            client.sendall(b'{"verb":"insert","id":1,"tokens":[1,2]}\n')
            assert json.loads(reader.readline())["ok"]
            client.sendall(b'{"verb":"shutdown","id":2}\n')
            reply = json.loads(reader.readline())
            assert reply["ok"] and reply["stopping"]
            client.close()
        finally:
            code, err = finish(proc)
        assert code == 0, err
        assert "1 accepted" in err


class TestSanitizerVariant:
    def test_sigterm_under_sanitizer_reports_clean_ledger(self):
        """REPRO_SANITIZE=1: the daemon's atexit sanitizer report must
        show no leaked segments and no lock-order violations."""
        proc, host, port = spawn_daemon(
            "--ingest-delay", "0.005",
            env_overrides={"REPRO_SANITIZE": "1"},
        )
        try:
            client = socket.create_connection((host, port), timeout=15)
            reader = client.makefile("rb")
            for i in range(6):
                client.sendall(
                    json.dumps(
                        {
                            "verb": "insert",
                            "id": i,
                            "tokens": [1, 2, 3, i],
                        }
                    ).encode("utf-8")
                    + b"\n"
                )
            time.sleep(0.01)
            proc.send_signal(signal.SIGTERM)
            client.close()
            del reader
        finally:
            code, err = finish(proc)
        assert code == 0, err
        assert "LEAK:" not in err, err
        assert "LOCK-ORDER:" not in err, err
