"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data import save_token_file


@pytest.fixture
def data_file(tmp_path):
    path = str(tmp_path / "data.txt")
    save_token_file(
        path,
        [
            ["a", "b", "c", "d"],
            ["a", "b", "c", "e"],
            ["a", "b", "c", "d", "e"],
            ["x", "y", "z"],
            ["x", "y", "w"],
        ],
    )
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_topk_args(self):
        args = build_parser().parse_args(
            ["topk", "--input", "f", "--k", "5", "--similarity", "cosine"]
        )
        assert args.k == 5
        assert args.similarity == "cosine"

    def test_invalid_similarity_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["topk", "--input", "f", "--k", "5", "--similarity", "l2"]
            )


class TestTopkCommand:
    def test_outputs_k_lines(self, data_file, capsys):
        assert main(["topk", "--input", data_file, "--k", "3"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3
        first = float(out[0].split("\t")[0])
        assert 0.0 <= first <= 1.0

    def test_descending_similarity(self, data_file, capsys):
        main(["topk", "--input", data_file, "--k", "4"])
        out = capsys.readouterr().out.strip().splitlines()
        values = [float(line.split("\t")[0]) for line in out]
        assert values == sorted(values, reverse=True)

    def test_qgram_mode(self, data_file, capsys):
        assert main(
            ["topk", "--input", data_file, "--k", "2", "--qgram", "2"]
        ) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2


class TestThresholdCommand:
    def test_threshold_join(self, data_file, capsys):
        assert main(
            ["threshold", "--input", data_file, "--threshold", "0.6"]
        ) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert all(float(line.split("\t")[0]) >= 0.6 for line in out)

    def test_algorithms_agree(self, data_file, capsys):
        outputs = []
        for algorithm in ("naive", "all-pairs", "ppjoin", "ppjoin+"):
            main(
                [
                    "threshold", "--input", data_file,
                    "--threshold", "0.5", "--algorithm", algorithm,
                ]
            )
            lines = capsys.readouterr().out.strip().splitlines()
            outputs.append(sorted(lines))
        assert all(out == outputs[0] for out in outputs)


class TestGenerateAndStats:
    def test_generate_then_stats(self, tmp_path, capsys):
        output = str(tmp_path / "gen.txt")
        assert main(
            ["generate", "--dataset", "dblp", "--n", "100",
             "--seed", "1", "--output", output]
        ) == 0
        capsys.readouterr()
        assert main(["stats", "--input", output]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "universe size" in out

    def test_generate_deterministic(self, tmp_path):
        a = str(tmp_path / "a.txt")
        b = str(tmp_path / "b.txt")
        main(["generate", "--dataset", "trec", "--n", "40",
              "--seed", "9", "--output", a])
        main(["generate", "--dataset", "trec", "--n", "40",
              "--seed", "9", "--output", b])
        assert open(a).read() == open(b).read()
