"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.data import save_token_file


@pytest.fixture
def data_file(tmp_path):
    path = str(tmp_path / "data.txt")
    save_token_file(
        path,
        [
            ["a", "b", "c", "d"],
            ["a", "b", "c", "e"],
            ["a", "b", "c", "d", "e"],
            ["x", "y", "z"],
            ["x", "y", "w"],
        ],
    )
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_topk_args(self):
        args = build_parser().parse_args(
            ["topk", "--input", "f", "--k", "5", "--similarity", "cosine"]
        )
        assert args.k == 5
        assert args.similarity == "cosine"

    def test_invalid_similarity_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["topk", "--input", "f", "--k", "5", "--similarity", "l2"]
            )


class TestTopkCommand:
    def test_outputs_k_lines(self, data_file, capsys):
        assert main(["topk", "--input", data_file, "--k", "3"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3
        first = float(out[0].split("\t")[0])
        assert 0.0 <= first <= 1.0

    def test_descending_similarity(self, data_file, capsys):
        main(["topk", "--input", data_file, "--k", "4"])
        out = capsys.readouterr().out.strip().splitlines()
        values = [float(line.split("\t")[0]) for line in out]
        assert values == sorted(values, reverse=True)

    def test_qgram_mode(self, data_file, capsys):
        assert main(
            ["topk", "--input", data_file, "--k", "2", "--qgram", "2"]
        ) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2


class TestThresholdCommand:
    def test_threshold_join(self, data_file, capsys):
        assert main(
            ["threshold", "--input", data_file, "--threshold", "0.6"]
        ) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert all(float(line.split("\t")[0]) >= 0.6 for line in out)

    def test_algorithms_agree(self, data_file, capsys):
        outputs = []
        for algorithm in ("naive", "all-pairs", "ppjoin", "ppjoin+"):
            main(
                [
                    "threshold", "--input", data_file,
                    "--threshold", "0.5", "--algorithm", algorithm,
                ]
            )
            lines = capsys.readouterr().out.strip().splitlines()
            outputs.append(sorted(lines))
        assert all(out == outputs[0] for out in outputs)


class TestGenerateAndStats:
    def test_generate_then_stats(self, tmp_path, capsys):
        output = str(tmp_path / "gen.txt")
        assert main(
            ["generate", "--dataset", "dblp", "--n", "100",
             "--seed", "1", "--output", output]
        ) == 0
        capsys.readouterr()
        assert main(["stats", "--input", output]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "universe size" in out

    def test_generate_deterministic(self, tmp_path):
        a = str(tmp_path / "a.txt")
        b = str(tmp_path / "b.txt")
        main(["generate", "--dataset", "trec", "--n", "40",
              "--seed", "9", "--output", a])
        main(["generate", "--dataset", "trec", "--n", "40",
              "--seed", "9", "--output", b])
        assert open(a).read() == open(b).read()


class TestTopkTraceFlags:
    def test_trace_prints_tree_to_stderr(self, data_file, capsys):
        assert main(
            ["topk", "--input", data_file, "--k", "3", "--trace"]
        ) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 3  # results intact
        assert "topk_join" in captured.err
        assert "event_loop" in captured.err

    def test_trace_does_not_change_results(self, data_file, capsys):
        main(["topk", "--input", data_file, "--k", "4"])
        plain = capsys.readouterr().out
        main(["topk", "--input", data_file, "--k", "4", "--trace"])
        traced = capsys.readouterr().out
        assert traced == plain

    def test_trace_out_json(self, data_file, tmp_path, capsys):
        out = str(tmp_path / "trace.json")
        assert main(
            ["topk", "--input", data_file, "--k", "3", "--trace-out", out]
        ) == 0
        capsys.readouterr()
        payload = json.loads(open(out).read())
        assert payload["schema"] == 1
        assert any(s["name"] == "topk_join" for s in payload["spans"])
        assert "phase_tree" in payload

    def test_trace_out_prometheus(self, data_file, tmp_path, capsys):
        out = str(tmp_path / "metrics.prom")
        assert main(
            ["topk", "--input", data_file, "--k", "3", "--trace-out", out]
        ) == 0
        capsys.readouterr()
        text = open(out).read()
        assert "# TYPE repro_events_total counter" in text
        assert "repro_span_seconds_total" in text

    def test_malformed_trace_out_exits_2(self, data_file, tmp_path, capsys):
        bad = str(tmp_path / "no" / "such" / "dir" / "trace.json")
        assert main(
            ["topk", "--input", data_file, "--k", "3", "--trace-out", bad]
        ) == 2
        captured = capsys.readouterr()
        assert captured.out == ""  # fails before the join runs
        assert "cannot write trace output" in captured.err


class TestTraceCommand:
    def test_tree_on_stdout_artifacts_on_disk(
        self, data_file, tmp_path, capsys
    ):
        prom = str(tmp_path / "metrics.prom")
        payload_path = str(tmp_path / "trace.json")
        assert main(
            ["trace", "--input", data_file, "--k", "3",
             "--prom-out", prom, "--json-out", payload_path]
        ) == 0
        captured = capsys.readouterr()
        assert "topk_join" in captured.out
        assert "results in" in captured.err  # summary goes to stderr
        prom_text = open(prom).read()
        assert "# TYPE repro_candidates_total counter" in prom_text
        payload = json.loads(open(payload_path).read())
        assert payload["phase_tree"]["roots"][0]["name"] == "topk_join"

    def test_workload_and_input_are_mutually_exclusive(self):
        # (argparse only flags the conflict when the explicit value
        # differs from the default, hence "trec" rather than "dblp")
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "--workload", "trec", "--input", "f"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.workload == "dblp"
        assert args.k == 100

    def test_bad_prom_out_exits_2(self, data_file, tmp_path, capsys):
        bad = str(tmp_path / "missing" / "metrics.prom")
        assert main(
            ["trace", "--input", data_file, "--k", "2", "--prom-out", bad]
        ) == 2
        assert "cannot write trace output" in capsys.readouterr().err

    def test_bad_json_out_closes_earlier_outputs(
        self, data_file, tmp_path, capsys
    ):
        good = str(tmp_path / "metrics.prom")
        bad = str(tmp_path / "missing" / "trace.json")
        assert main(
            ["trace", "--input", data_file, "--k", "2",
             "--prom-out", good, "--json-out", bad]
        ) == 2
        assert "cannot write trace output" in capsys.readouterr().err
