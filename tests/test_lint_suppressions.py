"""Inline ``# repro-lint: ignore[...]`` suppressions and their meta-check.

The contract under test: a suppression comment silences exactly the
named checkers on exactly its line; a suppression that silences nothing
is itself a finding (reserved id ``unused-suppression``), so stale
ignores surface instead of accumulating; and a line may opt out of the
meta-check by naming ``unused-suppression`` among its own ids.
"""

import json

import pytest

from repro.analysis import UNUSED_SUPPRESSION_ID, Project, run_checkers
from repro.cli import main

UNTYPED = "def shout(text):\n    return text.upper()\n"
UNTYPED_SUPPRESSED = (
    "def shout(text):  # repro-lint: ignore[annotations]\n"
    "    return text.upper()\n"
)
CLEAN_WITH_STALE_IGNORE = (
    "def shout(text: str) -> str:  # repro-lint: ignore[annotations]\n"
    "    return text.upper()\n"
)
CLEAN_WITH_KEPT_IGNORE = (
    "def shout(text: str) -> str:"
    "  # repro-lint: ignore[annotations, unused-suppression]\n"
    "    return text.upper()\n"
)


def lint(source: str) -> list:
    project = Project.from_sources({"repro/mod.py": source})
    return run_checkers(project)


class TestSuppression:
    def test_unsuppressed_finding_fires(self):
        findings = lint(UNTYPED)
        assert any(f.checker == "annotations" for f in findings)

    def test_suppression_silences_the_named_checker(self):
        findings = lint(UNTYPED_SUPPRESSED)
        assert not any(f.checker == "annotations" for f in findings)
        # The suppression was used, so no unused-suppression finding.
        assert not any(
            f.checker == UNUSED_SUPPRESSION_ID for f in findings
        )

    def test_suppression_is_line_scoped(self):
        two_functions = (
            "def a(x):  # repro-lint: ignore[annotations]\n"
            "    return x\n\n\n"
            "def b(y):\n"
            "    return y\n"
        )
        findings = lint(two_functions)
        hits = [f for f in findings if f.checker == "annotations"]
        assert len(hits) == 1
        assert hits[0].line == 5  # only the unsuppressed def fires

    def test_suppression_only_silences_named_ids(self):
        # ignore[race] does not silence the annotations finding on the
        # same line — and, silencing nothing, it is itself reported.
        source = (
            "def shout(text):  # repro-lint: ignore[race]\n"
            "    return text.upper()\n"
        )
        findings = lint(source)
        assert any(f.checker == "annotations" for f in findings)
        assert any(f.checker == UNUSED_SUPPRESSION_ID for f in findings)


class TestUnusedSuppression:
    def test_stale_ignore_is_a_finding(self):
        findings = lint(CLEAN_WITH_STALE_IGNORE)
        (finding,) = [
            f for f in findings if f.checker == UNUSED_SUPPRESSION_ID
        ]
        assert finding.line == 1
        assert "silences nothing" in finding.message

    def test_opt_out_keeps_the_suppression_quietly(self):
        findings = lint(CLEAN_WITH_KEPT_IGNORE)
        assert findings == []

    def test_deselecting_the_meta_check_drops_it(self):
        findings = [
            f
            for f in run_checkers(
                Project.from_sources({"repro/mod.py": CLEAN_WITH_STALE_IGNORE}),
                ignore=[UNUSED_SUPPRESSION_ID],
            )
        ]
        assert findings == []


class TestCli:
    @pytest.fixture
    def tree(self, tmp_path):
        def write(name, content):
            path = tmp_path / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
            return str(path)

        return write

    def test_suppressed_run_exits_zero(self, tree, capsys):
        path = tree("repro/mod.py", UNTYPED_SUPPRESSED)
        assert main(["lint", path]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_stale_ignore_exits_one(self, tree, capsys):
        path = tree("repro/mod.py", CLEAN_WITH_STALE_IGNORE)
        assert main(["lint", path]) == 1
        assert "[unused-suppression]" in capsys.readouterr().out

    def test_unused_suppression_in_json_output(self, tree, capsys):
        path = tree("repro/mod.py", CLEAN_WITH_STALE_IGNORE)
        assert main(["lint", path, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        checkers = {f["checker"] for f in report["findings"]}
        assert checkers == {UNUSED_SUPPRESSION_ID}
