"""Tests for the edit-distance substrate (repro.strings)."""

import random

import pytest

from repro.strings import (
    StringPair,
    edit_distance,
    edit_distance_join,
    edit_distance_topk,
    edit_distance_within,
)


def naive_join(strings, max_distance):
    results = []
    for a in range(len(strings)):
        for b in range(a + 1, len(strings)):
            distance = edit_distance(strings[a], strings[b])
            if distance <= max_distance:
                results.append(StringPair(a, b, distance))
    results.sort(key=lambda pair: (pair.distance, pair.x, pair.y))
    return results


def random_strings(rng, count, alphabet="abcd", max_length=12):
    out = []
    for __ in range(count):
        length = rng.randint(0, max_length)
        out.append("".join(rng.choice(alphabet) for __ in range(length)))
    return out


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xyz", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("abc", "abd", 1),
            ("abc", "acb", 2),
            ("a", "abcdef", 5),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert edit_distance(a, b) == expected

    def test_symmetry_and_triangle(self):
        rng = random.Random(1)
        for __ in range(50):
            a, b, c = random_strings(rng, 3)
            assert edit_distance(a, b) == edit_distance(b, a)
            assert edit_distance(a, c) <= (
                edit_distance(a, b) + edit_distance(b, c)
            )

    def test_lower_bounded_by_length_difference(self):
        rng = random.Random(2)
        for __ in range(50):
            a, b = random_strings(rng, 2)
            assert edit_distance(a, b) >= abs(len(a) - len(b))


class TestBandedVariant:
    def test_agrees_when_within_band(self):
        rng = random.Random(3)
        for __ in range(200):
            a, b = random_strings(rng, 2)
            true = edit_distance(a, b)
            for d in (0, 1, 2, 4, 8):
                banded = edit_distance_within(a, b, d)
                if true <= d:
                    assert banded == true
                else:
                    assert banded > d

    def test_negative_band(self):
        assert edit_distance_within("a", "a", -1) == 0
        assert edit_distance_within("a", "b", -1) > 0

    def test_length_gap_short_circuit(self):
        assert edit_distance_within("a", "abcdefgh", 2) > 2


class TestEditDistanceJoin:
    def test_matches_naive_randomized(self):
        rng = random.Random(5)
        for trial in range(25):
            strings = random_strings(rng, rng.randint(2, 20))
            for d in (0, 1, 2, 3):
                got = edit_distance_join(strings, d, q=2)
                want = naive_join(strings, d)
                assert got == want, (trial, d, strings)

    def test_qgram_sizes(self):
        rng = random.Random(6)
        strings = random_strings(rng, 15, alphabet="ab", max_length=10)
        for q in (1, 2, 3, 4):
            assert edit_distance_join(strings, 2, q=q) == naive_join(strings, 2)

    def test_exact_duplicates_at_distance_zero(self):
        strings = ["hello", "hello", "world"]
        results = edit_distance_join(strings, 0)
        assert results == [StringPair(0, 1, 0)]

    def test_sorted_by_distance(self):
        strings = ["abcde", "abcdx", "abxyx", "qqqqq"]
        results = edit_distance_join(strings, 4, q=2)
        distances = [pair.distance for pair in results]
        assert distances == sorted(distances)

    def test_short_strings_sharing_no_gram(self):
        # "ab" and "cd" share no 2-gram but ed = 2: the short-record path
        # must still find them.
        results = edit_distance_join(["ab", "cd"], 2, q=2)
        assert results == [StringPair(0, 1, 2)]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            edit_distance_join(["a"], -1)
        with pytest.raises(ValueError):
            edit_distance_join(["a"], 1, q=0)


class TestEditDistanceTopk:
    def test_matches_naive_ranking(self):
        rng = random.Random(7)
        for __ in range(10):
            strings = random_strings(rng, rng.randint(2, 14))
            k = rng.randint(1, 8)
            got = [pair.distance for pair in edit_distance_topk(strings, k, q=2)]
            all_pairs = naive_join(strings, 10**9)
            want = [pair.distance for pair in all_pairs[:k]]
            assert got == want

    def test_finds_near_duplicates_first(self):
        strings = ["similarity join", "similarity joins", "graph mining",
                   "graph minings"]
        top = edit_distance_topk(strings, 2)
        assert {pair.distance for pair in top} == {1}

    def test_k_exceeds_pairs(self):
        results = edit_distance_topk(["a", "b"], 100, q=1)
        assert len(results) == 1

    def test_empty_input(self):
        assert edit_distance_topk([], 5) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            edit_distance_topk(["a"], 0)
