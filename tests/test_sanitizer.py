"""The runtime shm/lock sanitizer (``REPRO_SANITIZE=1``).

Two halves: unit tests of the ledger/order-graph semantics on synthetic
event sequences, and end-to-end runs of the real shared-memory data
plane plus the shared bound with the sanitizer armed — the ISSUE's
acceptance check that a parallel shm join reports zero leaks and zero
lock-order violations.
"""

import pytest

from repro.analysis import sanitizer as sz
from repro.parallel.bound import SharedSimilarityBound
from repro.parallel.shm import (
    attach_collection,
    create_segment,
    destroy_segment,
    shm_usable,
)

from conftest import make_collection


@pytest.fixture(autouse=True)
def clean_sanitizer():
    """Each test starts and ends with an empty ledger.

    The module singleton survives across tests once armed (it must: the
    atexit reporter holds it), so the ledger is wiped on both sides to
    keep tests independent and the end-of-process report quiet.
    """
    sz.reset()
    yield
    sz.reset()


@pytest.fixture
def armed(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitizer = sz.active()
    assert sanitizer is not None
    sanitizer.reset()
    return sanitizer


class TestArming:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sz.enabled()
        assert sz.active() is None

    def test_zero_means_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sz.enabled()
        assert sz.active() is None

    def test_armed_returns_singleton(self, armed):
        assert sz.active() is armed

    def test_check_clean_is_noop_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sz.check_clean().clean


class TestSegmentLedger:
    def test_create_without_destroy_is_a_leak(self, armed):
        armed.on_create("repro_shm_aaaa")
        report = armed.report()
        assert report.leaked_segments == ["repro_shm_aaaa"]
        assert not report.clean
        assert "LEAK" in report.render()

    def test_create_then_destroy_is_clean(self, armed):
        armed.on_create("repro_shm_aaaa")
        armed.on_destroy("repro_shm_aaaa")
        assert armed.report().clean

    def test_attach_without_detach_is_not_a_leak(self, armed):
        # Pool workers unmap at process exit by design; only the owner's
        # missing destroy is a leak.
        armed.on_attach("repro_shm_aaaa")
        assert armed.report().clean

    def test_check_clean_raises_on_leak(self, armed):
        armed.on_create("repro_shm_aaaa")
        with pytest.raises(RuntimeError, match="LEAK"):
            sz.check_clean()

    def test_reset_clears_the_ledger(self, armed):
        armed.on_create("repro_shm_aaaa")
        armed.reset()
        assert armed.report().clean


class TestLockOrder:
    def test_consistent_order_is_clean(self, armed):
        for _ in range(2):
            armed.on_acquire("a")
            armed.on_acquire("b")
            armed.on_release("b")
            armed.on_release("a")
        assert armed.report().clean

    def test_inversion_is_reported(self, armed):
        armed.on_acquire("a")
        armed.on_acquire("b")
        armed.on_release("b")
        armed.on_release("a")
        armed.on_acquire("b")
        armed.on_acquire("a")
        armed.on_release("a")
        armed.on_release("b")
        report = armed.report()
        assert len(report.lock_order_violations) == 1
        assert "deadlock" in report.lock_order_violations[0]

    def test_inversion_reported_once(self, armed):
        for _ in range(3):
            armed.on_acquire("a")
            armed.on_acquire("b")
            armed.on_release("b")
            armed.on_release("a")
            armed.on_acquire("b")
            armed.on_acquire("a")
            armed.on_release("a")
            armed.on_release("b")
        assert len(armed.report().lock_order_violations) == 1

    def test_reacquire_same_key_is_not_an_inversion(self, armed):
        armed.on_acquire("a")
        armed.on_acquire("a")
        armed.on_release("a")
        armed.on_release("a")
        assert armed.report().clean

    def test_out_of_order_release_keeps_stack_sane(self, armed):
        armed.on_acquire("a")
        armed.on_acquire("b")
        armed.on_release("a")  # released out of order
        armed.on_release("b")
        armed.on_acquire("a")
        armed.on_release("a")
        assert armed.report().clean


class TestHooksEndToEnd:
    pytestmark = pytest.mark.skipif(
        not shm_usable(), reason="no usable shared memory on this host"
    )

    def test_serial_roundtrip_reports_clean(self, armed):
        coll = make_collection((1, 2, 3), (2, 3, 4), (5,))
        descriptor = create_segment(coll)
        attached = attach_collection(descriptor)
        attached.detach()  # safe while views live: close is deferred
        destroy_segment(descriptor)
        assert sz.check_clean().clean

    def test_missing_destroy_is_caught(self, armed):
        coll = make_collection((1, 2), (2, 3))
        descriptor = create_segment(coll)
        try:
            with pytest.raises(RuntimeError, match=descriptor.name):
                sz.check_clean()
        finally:
            destroy_segment(descriptor)
        assert sz.check_clean().clean

    def test_parallel_shm_join_is_clean(self, armed):
        from repro.parallel import parallel_topk_join

        coll = make_collection(
            (1, 2, 3), (2, 3, 4), (1, 3, 5), (2, 4, 6), (1, 2, 6)
        )
        results = parallel_topk_join(coll, 5, workers=1, shards=4, shm=True)
        assert len(results) == 5
        report = sz.check_clean()
        assert report.leaked_segments == []
        assert report.lock_order_violations == []

    def test_shared_bound_offer_is_clean(self, armed):
        bound = SharedSimilarityBound()
        bound.offer(0.25)
        bound.offer(0.50)
        bound.offer(0.50)  # no-op republish
        assert bound.refresh() == 0.50
        assert sz.check_clean().clean

    def test_hooks_are_inert_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        if not shm_usable():
            pytest.skip("no usable shared memory on this host")
        coll = make_collection((1, 2), (2, 3))
        descriptor = create_segment(coll)
        destroy_segment(descriptor)
        sanitizer = sz.active()
        assert sanitizer is None


class TestFuzzerWiring:
    def test_no_failures_when_disabled(self, monkeypatch):
        from repro.oracle.fuzz import _sanitizer_failures

        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert _sanitizer_failures() == []

    def test_leak_becomes_failure_and_resets(self, armed, monkeypatch):
        from repro.oracle.fuzz import _sanitizer_failures

        armed.on_create("repro_shm_bbbb")
        failures = _sanitizer_failures()
        assert failures and "repro_shm_bbbb" in failures[0]
        # The ledger was reset: the next iteration reports nothing.
        assert _sanitizer_failures() == []
