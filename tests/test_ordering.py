"""Unit tests for repro.data.ordering."""

from repro.data.ordering import (
    document_frequencies,
    frequency_ordering,
    idf_ordering,
    lexicographic_ordering,
)


class TestDocumentFrequencies:
    def test_counts_records_not_occurrences(self):
        df = document_frequencies([["a", "a", "b"], ["a"]])
        assert df["a"] == 2
        assert df["b"] == 1

    def test_empty(self):
        assert document_frequencies([]) == {}

    def test_disjoint_records(self):
        df = document_frequencies([["a"], ["b"], ["c"]])
        assert all(count == 1 for count in df.values())


class TestIdfOrdering:
    def test_rare_tokens_first(self):
        df = {"common": 10, "rare": 1, "medium": 5}
        ranks = idf_ordering(df)
        assert ranks["rare"] < ranks["medium"] < ranks["common"]

    def test_ties_broken_lexicographically(self):
        ranks = idf_ordering({"b": 3, "a": 3})
        assert ranks["a"] < ranks["b"]

    def test_dense_ranks(self):
        ranks = idf_ordering({"a": 1, "b": 2, "c": 3})
        assert sorted(ranks.values()) == [0, 1, 2]

    def test_deterministic(self):
        df = {"x": 2, "y": 2, "z": 1}
        assert idf_ordering(df) == idf_ordering(dict(reversed(list(df.items()))))


class TestFrequencyOrdering:
    def test_frequent_tokens_first(self):
        ranks = frequency_ordering({"common": 10, "rare": 1})
        assert ranks["common"] < ranks["rare"]

    def test_is_reverse_of_idf_for_distinct_frequencies(self):
        df = {"a": 1, "b": 2, "c": 3}
        idf = idf_ordering(df)
        freq = frequency_ordering(df)
        assert [idf[t] for t in "abc"] == [freq[t] for t in "cba"]


class TestLexicographicOrdering:
    def test_alphabetical(self):
        ranks = lexicographic_ordering({"banana": 5, "apple": 1})
        assert ranks["apple"] < ranks["banana"]

    def test_ignores_frequencies(self):
        a = lexicographic_ordering({"x": 1, "y": 100})
        b = lexicographic_ordering({"x": 100, "y": 1})
        assert a == b
