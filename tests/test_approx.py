"""Tests for the MinHash/LSH approximate-join extension."""

import random

import pytest

from repro import naive_topk
from repro.approx import (
    LSHIndex,
    MinHasher,
    approximate_topk,
    collision_probability,
    estimate_jaccard,
)
from repro.data import RecordCollection, synthetic_collection
from repro.similarity import Jaccard


class TestMinHasher:
    def test_signature_length(self):
        hasher = MinHasher(num_hashes=32, seed=1)
        assert len(hasher.signature((1, 2, 3))) == 32

    def test_deterministic(self):
        a = MinHasher(num_hashes=16, seed=5).signature((1, 2, 3))
        b = MinHasher(num_hashes=16, seed=5).signature((1, 2, 3))
        assert a == b

    def test_different_seeds_differ(self):
        a = MinHasher(num_hashes=16, seed=5).signature((1, 2, 3))
        b = MinHasher(num_hashes=16, seed=6).signature((1, 2, 3))
        assert a != b

    def test_identical_sets_identical_signatures(self):
        hasher = MinHasher(num_hashes=16, seed=2)
        assert hasher.signature((4, 7, 9)) == hasher.signature((9, 4, 7))

    def test_empty_record_rejected(self):
        with pytest.raises(ValueError):
            MinHasher(8).signature(())

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(0)


class TestEstimator:
    def test_identical_estimates_one(self):
        hasher = MinHasher(64, seed=3)
        sig = hasher.signature((1, 2, 3, 4))
        assert estimate_jaccard(sig, sig) == pytest.approx(1.0)

    def test_disjoint_estimates_near_zero(self):
        hasher = MinHasher(128, seed=3)
        a = hasher.signature(tuple(range(0, 50)))
        b = hasher.signature(tuple(range(1000, 1050)))
        assert estimate_jaccard(a, b) < 0.1

    def test_estimator_tracks_true_jaccard(self):
        # Average over many hash functions: estimate within 0.12 of truth.
        rng = random.Random(8)
        hasher = MinHasher(256, seed=9)
        sim = Jaccard()
        for __ in range(10):
            x = tuple(sorted(rng.sample(range(200), 40)))
            y_list = list(x[:20]) + rng.sample(range(300, 500), 20)
            y = tuple(sorted(set(y_list)))
            truth = sim.similarity(x, y)
            estimate = estimate_jaccard(hasher.signature(x), hasher.signature(y))
            assert abs(estimate - truth) < 0.12

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            estimate_jaccard((1, 2), (1,))


class TestCollisionProbability:
    def test_monotone_in_similarity(self):
        values = [collision_probability(s, 16, 8) for s in (0.2, 0.5, 0.8, 0.95)]
        assert values == sorted(values)

    def test_extremes(self):
        assert collision_probability(0.0, 16, 8) == pytest.approx(0.0)
        assert collision_probability(1.0, 16, 8) == pytest.approx(1.0)

    def test_more_bands_more_collisions(self):
        assert collision_probability(0.6, 32, 8) > collision_probability(
            0.6, 8, 8
        )


class TestLSHIndex:
    def test_identical_records_always_collide(self):
        index = LSHIndex(bands=4, rows=4, seed=1)
        index.add(0, (1, 2, 3))
        index.add(1, (1, 2, 3))
        assert (0, 1) in set(index.candidate_pairs())

    def test_disjoint_records_rarely_collide(self):
        index = LSHIndex(bands=4, rows=8, seed=1)
        index.add(0, tuple(range(0, 30)))
        index.add(1, tuple(range(100, 130)))
        assert (0, 1) not in set(index.candidate_pairs())

    def test_pairs_are_distinct(self):
        index = LSHIndex(bands=8, rows=2, seed=1)
        for rid in range(6):
            index.add(rid, (1, 2, 3, 4))
        pairs = list(index.candidate_pairs())
        assert len(pairs) == len(set(pairs)) == 15

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LSHIndex(bands=0, rows=4)


class TestApproximateTopk:
    def test_high_recall_on_near_duplicates(self):
        coll = synthetic_collection(
            200, avg_size=30, universe=5000, seed=4, duplicate_fraction=0.4,
            max_edit_fraction=0.1,
        )
        exact = naive_topk(coll, 20)
        approx = approximate_topk(coll, 20, bands=32, rows=4, seed=2)
        exact_pairs = {(r.x, r.y) for r in exact}
        approx_pairs = {(r.x, r.y) for r in approx}
        recall = len(exact_pairs & approx_pairs) / len(exact_pairs)
        assert recall >= 0.7

    def test_similarities_are_exact(self):
        coll = RecordCollection.from_integer_sets(
            [[1, 2, 3], [1, 2, 3, 4], [9, 10]]
        )
        sim = Jaccard()
        for result in approximate_topk(coll, 3, bands=16, rows=2):
            truth = sim.similarity(
                coll[result.x].tokens, coll[result.y].tokens
            )
            assert result.similarity == pytest.approx(truth)

    def test_descending_order(self):
        coll = synthetic_collection(
            80, avg_size=10, universe=1000, seed=6, duplicate_fraction=0.4
        )
        values = [r.similarity for r in approximate_topk(coll, 15)]
        assert values == sorted(values, reverse=True)
