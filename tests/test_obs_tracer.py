"""Unit tests for the span tracer: nesting, clocks, export and absorb."""

import json
import threading

import pytest

from repro.obs import TRACE_SCHEMA, SpanRecord, Tracer


class TestSpans:
    def test_records_on_exit(self):
        tracer = Tracer()
        with tracer.span("outer", k=3):
            assert tracer.spans == []  # nothing recorded until exit
        assert [s.name for s in tracer.spans] == ["outer"]
        record = tracer.spans[0]
        assert record.parent == 0
        assert record.duration >= 0.0
        assert record.meta == {"k": 3}

    def test_nesting_sets_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer_id:
            with tracer.span("inner") as inner_id:
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].span_id == outer_id
        assert by_name["inner"].span_id == inner_id
        assert by_name["inner"].parent == outer_id
        assert outer_id != inner_id

    def test_span_recorded_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans] == ["doomed"]
        assert tracer.active_stacks() == {}  # stack popped on the way out

    def test_child_span_lies_within_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        inner, outer = by_name["inner"], by_name["outer"]
        assert outer.start <= inner.start
        assert inner.start + inner.duration <= outer.start + outer.duration + 1e-6

    def test_sibling_threads_do_not_nest(self):
        tracer = Tracer()
        seen = {}

        def work():
            with tracer.span("child"):
                seen["stacks"] = tracer.active_stacks()

        with tracer.span("parent"):
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        child = next(s for s in tracer.spans if s.name == "child")
        assert child.parent == 0  # another thread's stack is not a parent
        assert sorted(len(v) for v in seen["stacks"].values()) == [1, 1]


class TestPhaseTimers:
    def test_accumulates_totals_and_counts(self):
        tracer = Tracer()
        tracer.add_phase_time("kernel_scan", 0.25)
        tracer.add_phase_time("kernel_scan", 0.75)
        assert tracer.phase_times() == {"kernel_scan": (1.0, 2)}


class TestExportAbsorb:
    def test_payload_is_json_serializable(self):
        tracer = Tracer()
        with tracer.span("run", k=2):
            tracer.add_phase_time("scan", 0.1)
        tracer.metrics.counter("repro_events_total", "help").inc(7)
        payload = tracer.export()
        assert payload["schema"] == TRACE_SCHEMA
        rebuilt = json.loads(json.dumps(payload))
        assert rebuilt["spans"][0]["name"] == "run"
        assert rebuilt["phases"]["scan"]["count"] == 1

    def test_span_dict_roundtrip(self):
        record = SpanRecord(
            name="n", start=1.0, duration=2.0, parent=3, span_id=4, meta={"k": 5}
        )
        assert SpanRecord.from_dict(record.as_dict()) == record

    def test_absorb_reparents_and_renumbers(self):
        worker = Tracer()
        with worker.span("topk_join"):
            with worker.span("event_loop"):
                pass
        worker.add_phase_time("kernel_scan", 0.5)
        worker.metrics.counter("repro_events_total", "help").inc(3)

        parent = Tracer()
        with parent.span("parallel_topk_join"):
            pass
        parent.absorb(worker.export(), prefix="task-1")

        by_name = {s.name: s for s in parent.spans}
        container = by_name["task-1"]
        assert by_name["topk_join"].parent == container.span_id
        assert by_name["event_loop"].parent == by_name["topk_join"].span_id
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))  # renumbered, no collisions
        assert parent.phase_times()["kernel_scan"] == (0.5, 1)
        counters = {c.name: c.value for c in parent.metrics.counters()}
        assert counters["repro_events_total"] == 3

    def test_absorbing_two_tasks_keeps_subtrees_distinct(self):
        def one_worker():
            worker = Tracer()
            with worker.span("topk_join"):
                pass
            return worker.export()

        parent = Tracer()
        parent.absorb(one_worker(), prefix="task-1")
        parent.absorb(one_worker(), prefix="task-2")
        names = [s.name for s in parent.spans]
        assert names.count("topk_join") == 2
        assert "task-1" in names and "task-2" in names
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_absorb_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            Tracer().absorb({"schema": 999}, prefix="task-1")
