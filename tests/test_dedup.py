"""Tests for the dedup/clustering layer (repro.dedup)."""

import random

import pytest

from repro.data import RecordCollection
from repro.dedup import (
    UnionFind,
    cluster_by_threshold,
    cluster_topk,
    deduplicate,
)


class TestUnionFind:
    def test_initial_components(self):
        assert UnionFind(5).components == 5

    def test_union_reduces_components(self):
        union = UnionFind(4)
        assert union.union(0, 1)
        assert union.components == 3
        assert not union.union(1, 0), "repeat union is a no-op"
        assert union.components == 3

    def test_connected_transitively(self):
        union = UnionFind(5)
        union.union(0, 1)
        union.union(1, 2)
        assert union.connected(0, 2)
        assert not union.connected(0, 3)

    def test_set_size(self):
        union = UnionFind(6)
        union.union(0, 1)
        union.union(2, 3)
        union.union(0, 3)
        assert union.set_size(2) == 4
        assert union.set_size(5) == 1

    def test_groups_partition(self):
        union = UnionFind(6)
        union.union(0, 1)
        union.union(3, 4)
        groups = list(union.groups())
        flattened = sorted(rid for group in groups for rid in group)
        assert flattened == list(range(6))
        assert groups[0] in ([0, 1], [3, 4])

    def test_random_against_reference(self):
        rng = random.Random(3)
        n = 40
        union = UnionFind(n)
        reference = {i: {i} for i in range(n)}
        for __ in range(60):
            a, b = rng.randrange(n), rng.randrange(n)
            union.union(a, b)
            set_a = next(s for s in reference.values() if a in s)
            set_b = next(s for s in reference.values() if b in s)
            if set_a is not set_b:
                set_a |= set_b
                for member in set_b:
                    reference[member] = set_a
        for i in range(n):
            for j in range(n):
                assert union.connected(i, j) == (j in reference[i])

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)


@pytest.fixture
def collection():
    # Two clear duplicate groups plus two singletons.
    return RecordCollection.from_integer_sets(
        [
            [1, 2, 3, 4],
            [1, 2, 3, 5],
            [1, 2, 3, 4, 5],
            [10, 11, 12],
            [10, 11, 13],
            [20, 21],
            [30, 31],
        ],
        dedupe=False,
    )


class TestClusterByThreshold:
    def test_groups_found(self, collection):
        clustering = cluster_by_threshold(collection, 0.5)
        groups = clustering.duplicate_groups
        assert len(groups) == 2
        sizes = sorted(len(group) for group in groups)
        assert sizes == [2, 3]

    def test_partition_complete(self, collection):
        clustering = cluster_by_threshold(collection, 0.5)
        members = sorted(
            rid for cluster in clustering.clusters for rid in cluster
        )
        assert members == list(range(len(collection)))
        for rid, index in clustering.cluster_of.items():
            assert rid in clustering.clusters[index]

    def test_high_threshold_all_singletons(self, collection):
        clustering = cluster_by_threshold(collection, 0.99)
        assert clustering.duplicate_groups == []

    def test_representatives_prefer_largest(self, collection):
        clustering = cluster_by_threshold(collection, 0.5)
        representatives = clustering.representatives(collection)
        # One per cluster, and the 5-token record represents its group.
        assert len(representatives) == len(clustering.clusters)
        big_rid = max(
            range(len(collection)), key=lambda rid: len(collection[rid])
        )
        assert big_rid in representatives


class TestClusterTopk:
    def test_matches_threshold_clustering_on_clean_data(self, collection):
        by_threshold = cluster_by_threshold(collection, 0.5)
        by_topk = cluster_topk(collection, 4, min_similarity=0.49)
        assert sorted(map(tuple, by_threshold.duplicate_groups)) == sorted(
            map(tuple, by_topk.duplicate_groups)
        )

    def test_min_similarity_drops_tail(self, collection):
        permissive = cluster_topk(collection, 20, min_similarity=0.0)
        strict = cluster_topk(collection, 20, min_similarity=0.9)
        assert len(strict.duplicate_groups) <= len(
            permissive.duplicate_groups
        )


class TestDeduplicate:
    def test_suppresses_duplicates(self, collection):
        survivors = deduplicate(collection, 0.5)
        assert len(survivors) == 4  # 2 groups + 2 singletons

    def test_everything_survives_at_high_threshold(self, collection):
        survivors = deduplicate(collection, 0.999)
        assert len(survivors) == len(collection)
